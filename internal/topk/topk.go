package topk

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"seda/internal/graph"
	"seda/internal/index"
	"seda/internal/pathdict"
	"seda/internal/query"
	"seda/internal/xmldoc"
)

// Options tunes a search. The zero value is usable: K defaults to 10.
type Options struct {
	// K is the number of results to return (default 10).
	K int
	// MaxLinkHops caps link-edge traversals when checking tuple
	// connectivity (default 2).
	MaxLinkHops int
	// PerDocPerTerm beams the number of matches considered per term within
	// one document (default 8). Raising it trades latency for exactness.
	PerDocPerTerm int
	// DisableCrossDoc turns off tuples spanning two link-connected
	// documents; the zero value keeps them on (Definition 4's
	// connectivity-by-data-graph requirement).
	DisableCrossDoc bool
	// ContentOnly ignores the compactness factor — the ablation the
	// benchmarks compare against (score = content sum only).
	ContentOnly bool
	// Parallelism is the number of worker goroutines enumerating candidate
	// units (default runtime.GOMAXPROCS(0); 1 forces a sequential scan).
	// The result set is identical at every setting.
	Parallelism int
	// Metrics, when non-nil, accumulates search counters and latency into
	// the shared family set. Nil (the default) skips all metric work.
	Metrics *Metrics
	// Trace, when non-nil, is filled with this search's execution trace
	// (scatter dimensions, phase timings, wave-by-wave threshold
	// evolution). Nil skips all trace work; results are identical.
	Trace *Trace
}

func (o *Options) defaults() {
	if o.K <= 0 {
		o.K = 10
	}
	if o.MaxLinkHops <= 0 {
		o.MaxLinkHops = 2
	}
	if o.PerDocPerTerm <= 0 {
		o.PerDocPerTerm = 8
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// Result is one ranked tuple: node i satisfies query term i.
type Result struct {
	Nodes        []xmldoc.NodeRef
	Paths        []pathdict.PathID
	Score        float64
	ContentScore float64
	Compactness  float64
}

// Stats reports how much work the TA loop did; UnitsScanned <
// UnitsCandidates demonstrates threshold-based early termination. The
// counters are deterministic at any parallelism: wave boundaries, not
// worker timing, decide which units get scanned.
type Stats struct {
	// UnitsCandidates is the number of candidate units (documents or
	// link-joined document pairs) with full term coverage.
	UnitsCandidates int
	// UnitsScanned is how many of them were materialized before the
	// threshold condition stopped the scan.
	UnitsScanned int
	// TuplesScored counts scored (connected) tuples.
	TuplesScored int
	// Waves is the number of TA waves the scan ran.
	Waves int
	// EarlyTerminated reports that the TA threshold stopped the scan
	// before the candidate list was drained.
	EarlyTerminated bool
}

// Searcher executes top-k queries over an index and a data graph.
type Searcher struct {
	ix *index.Index
	g  *graph.Graph
}

// New returns a Searcher. A nil graph is replaced by an empty overlay (tree
// edges only), so same-document tuples still connect and score.
func New(ix *index.Index, g *graph.Graph) *Searcher {
	if g == nil {
		g = graph.New(ix.Collection())
	}
	return &Searcher{ix: ix, g: g}
}

// Search returns the top-k result tuples of q, best first. Ties break
// deterministically by node order.
func (s *Searcher) Search(q query.Query, opts Options) ([]Result, error) {
	rs, _, err := s.SearchStats(q, opts)
	return rs, err
}

// SearchStats is Search with TA work counters.
func (s *Searcher) SearchStats(q query.Query, opts Options) ([]Result, Stats, error) {
	opts.defaults()
	if len(q.Terms) == 0 {
		return nil, Stats{}, fmt.Errorf("topk: empty query")
	}
	// Instrumentation is gated on the nil checks so the disabled path does
	// no metric or trace work (and no allocations) at all.
	instrumented := opts.Metrics != nil || opts.Trace != nil
	var t0, t1 time.Time
	if instrumented {
		t0 = time.Now()
	}
	matches, err := s.fetchMatches(q, opts.Parallelism)
	if err != nil {
		return nil, Stats{}, err
	}
	if instrumented {
		t1 = time.Now()
	}
	rs, st := s.rank(matches, opts)
	if instrumented {
		t2 := time.Now()
		tasks := len(q.Terms) * s.ix.NumShards()
		if tr := opts.Trace; tr != nil {
			tr.Terms = len(q.Terms)
			tr.Shards = s.ix.NumShards()
			tr.FetchTasks = tasks
			tr.PerTermMatches = make([]int, len(matches))
			for i, ms := range matches {
				tr.PerTermMatches[i] = len(ms)
			}
			tr.FetchNs = t1.Sub(t0).Nanoseconds()
			tr.RankNs = t2.Sub(t1).Nanoseconds()
		}
		if m := opts.Metrics; m != nil {
			m.observe(st, tasks, t2.Sub(t0).Seconds())
		}
	}
	return rs, st, nil
}

// fetchMatches evaluates every query term against the index, scattering
// (term × shard) evaluations across the worker pool when the budget
// allows (the index is immutable after Build, so evaluations share no
// mutable state) and gathering per term in shard order — shard ranges are
// disjoint and increasing, so the concatenation is MatchTerm's exact
// answer. At most parallelism worker goroutines run. Errors surface in
// (term, shard) order so the reported failure is deterministic.
func (s *Searcher) fetchMatches(q query.Query, parallelism int) ([][]index.Match, error) {
	nsh := s.ix.NumShards()
	nTasks := len(q.Terms) * nsh
	parts := make([][]index.Match, nTasks) // task (i, sh) at i*nsh+sh
	errs := make([]error, nTasks)
	workers := parallelism
	if workers > nTasks {
		workers = nTasks
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					t := int(next.Add(1)) - 1
					if t >= nTasks {
						return
					}
					parts[t], errs[t] = s.ix.MatchTermShard(q.Terms[t/nsh], t%nsh)
				}
			}()
		}
		wg.Wait()
	} else {
		for t := 0; t < nTasks; t++ {
			parts[t], errs[t] = s.ix.MatchTermShard(q.Terms[t/nsh], t%nsh)
		}
	}
	for t, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("topk: term %d: %w", t/nsh, err)
		}
	}
	matches := make([][]index.Match, len(q.Terms))
	for i := range q.Terms {
		if nsh == 1 {
			matches[i] = parts[i]
			continue
		}
		total := 0
		for sh := 0; sh < nsh; sh++ {
			total += len(parts[i*nsh+sh])
		}
		matches[i] = make([]index.Match, 0, total)
		for sh := 0; sh < nsh; sh++ {
			matches[i] = append(matches[i], parts[i*nsh+sh]...)
		}
	}
	return matches, nil
}

// docEntry groups one document's matches by term.
type docEntry struct {
	perTerm [][]index.Match // index by term; nil when the term has no match here
}

func (s *Searcher) rank(matches [][]index.Match, opts Options) ([]Result, Stats) {
	m := len(matches)
	// Group matches per document, keeping only the strongest
	// opts.PerDocPerTerm per (doc, term).
	docs := make(map[xmldoc.DocID]*docEntry)
	for i, ms := range matches {
		for _, match := range ms {
			e, ok := docs[match.Ref.Doc]
			if !ok {
				e = &docEntry{perTerm: make([][]index.Match, m)}
				docs[match.Ref.Doc] = e
			}
			e.perTerm[i] = append(e.perTerm[i], match)
		}
	}
	for _, e := range docs {
		for i := range e.perTerm {
			lst := e.perTerm[i]
			sort.Slice(lst, func(a, b int) bool { return lst[a].Score > lst[b].Score })
			if len(lst) > opts.PerDocPerTerm {
				e.perTerm[i] = lst[:opts.PerDocPerTerm]
			}
		}
	}

	// Candidate units: single documents covering all terms, plus pairs of
	// link-connected documents that cover all terms together.
	var units []candUnit
	for id, e := range docs {
		full := true
		b := 0.0
		for i := range e.perTerm {
			if len(e.perTerm[i]) == 0 {
				full = false
				break
			}
			b += e.perTerm[i][0].Score
		}
		if full {
			units = append(units, candUnit{entries: []*docEntry{e}, ids: []xmldoc.DocID{id}, bound: b})
		}
	}
	if !opts.DisableCrossDoc && s.g != nil {
		units = append(units, s.crossDocUnits(docs, m)...)
	}
	// Bound-descending claim order; the id tie-break makes the scan order
	// (and hence sequential stats) deterministic.
	sort.Slice(units, func(i, j int) bool {
		if units[i].bound != units[j].bound {
			return units[i].bound > units[j].bound
		}
		return lessDocIDs(units[i].ids, units[j].ids)
	})

	// TA loop over geometric waves: scan units[pos:end), merge, then test
	// the threshold against the first unscanned unit's bound.
	stats := Stats{UnitsCandidates: len(units)}
	final := newTopHeap(opts.K)
	for pos := 0; pos < len(units); {
		if t, ok := final.kth(); ok && t >= units[pos].bound {
			stats.EarlyTerminated = true
			break // TA threshold: every remaining unit is bounded lower
		}
		end := 2 * pos // wave boundaries at 1, 2, 4, 8, … scanned units
		if pos == 0 {
			end = 1
		}
		if end > len(units) {
			end = len(units)
		}
		s.scanWave(units[pos:end], opts, final, &stats)
		stats.Waves++
		if tr := opts.Trace; tr != nil {
			kth, _ := final.kth()
			next := 0.0
			if end < len(units) {
				next = units[end].bound
			}
			tr.Waves = append(tr.Waves, WaveTrace{
				Units: end - pos, CumUnits: end, KthScore: kth, NextBound: next,
			})
		}
		pos = end
	}
	if tr := opts.Trace; tr != nil {
		tr.UnitsCandidates = stats.UnitsCandidates
		tr.UnitsScanned = stats.UnitsScanned
		tr.TuplesScored = stats.TuplesScored
		tr.EarlyTerminated = stats.EarlyTerminated
		tr.KthScore, _ = final.kth()
	}
	return final.sorted(), stats
}

// scanWave enumerates one wave of candidate units into final. Waves wider
// than one unit fan out over opts.Parallelism workers with per-worker
// heaps; since every unit of the wave is scanned and the heap order is a
// strict total order, the merged outcome is independent of scheduling.
func (s *Searcher) scanWave(wave []candUnit, opts Options, final *topHeap, stats *Stats) {
	stats.UnitsScanned += len(wave)
	workers := opts.Parallelism
	if workers > len(wave) {
		workers = len(wave)
	}
	if workers <= 1 {
		for _, u := range wave {
			s.enumerate(u, opts, func(r Result) {
				stats.TuplesScored++
				final.offer(r)
			})
		}
		return
	}
	var (
		next         atomic.Int64
		tuplesScored atomic.Int64
		heaps        = make([]*topHeap, workers)
		wg           sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := newTopHeap(opts.K)
			heaps[w] = h
			for {
				i := int(next.Add(1)) - 1
				if i >= len(wave) {
					return
				}
				s.enumerate(wave[i], opts, func(r Result) {
					tuplesScored.Add(1)
					h.offer(r)
				})
			}
		}(w)
	}
	wg.Wait()
	stats.TuplesScored += int(tuplesScored.Load())
	for _, h := range heaps {
		for _, r := range h.rs {
			final.offer(r)
		}
	}
}

// candUnit is a candidate unit for the TA loop: the documents whose
// combined matches can form tuples, with an upper score bound.
type candUnit struct {
	entries []*docEntry
	ids     []xmldoc.DocID
	bound   float64
}

// crossDocUnits builds two-document candidate units from link edges whose
// endpoint documents each match at least one term.
func (s *Searcher) crossDocUnits(docs map[xmldoc.DocID]*docEntry, m int) []candUnit {
	var units []candUnit
	seen := make(map[[2]xmldoc.DocID]bool)
	for _, e := range s.g.Edges() {
		a, b := e.From.Doc, e.To.Doc
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]xmldoc.DocID{a, b}] {
			continue
		}
		seen[[2]xmldoc.DocID{a, b}] = true
		ea, okA := docs[a]
		eb, okB := docs[b]
		if !okA || !okB {
			continue
		}
		bound := 0.0
		full := true
		for i := 0; i < m; i++ {
			best := 0.0
			if len(ea.perTerm[i]) > 0 {
				best = ea.perTerm[i][0].Score
			}
			if len(eb.perTerm[i]) > 0 && eb.perTerm[i][0].Score > best {
				best = eb.perTerm[i][0].Score
			}
			if best == 0 && len(ea.perTerm[i]) == 0 && len(eb.perTerm[i]) == 0 {
				full = false
				break
			}
			bound += best
		}
		if full {
			units = append(units, candUnit{entries: []*docEntry{ea, eb}, ids: []xmldoc.DocID{a, b}, bound: bound})
		}
	}
	return units
}

// enumerate materializes the tuples of a candidate unit and emits each
// scored, connected one. In a two-document pair unit, tuples whose nodes
// all live in one document are skipped: the single-document unit of that
// document (which must exist, since such a tuple proves full term coverage
// there) already enumerated them, and re-emitting duplicates would let one
// tuple occupy several top-k slots and corrupt the k-th threshold.
func (s *Searcher) enumerate(u candUnit, opts Options, emit func(Result)) {
	m := len(u.entries[0].perTerm)
	options := make([][]index.Match, m)
	for i := 0; i < m; i++ {
		for _, e := range u.entries {
			options[i] = append(options[i], e.perTerm[i]...)
		}
		if len(options[i]) == 0 {
			return
		}
	}
	pairUnit := len(u.entries) == 2
	tuple := make([]index.Match, m)
	var rec func(i int)
	rec = func(i int) {
		if i == m {
			if pairUnit && singleDoc(tuple) {
				return
			}
			if r, ok := s.scoreTuple(tuple, opts); ok {
				emit(r)
			}
			return
		}
		for _, match := range options[i] {
			tuple[i] = match
			rec(i + 1)
		}
	}
	rec(0)
}

// singleDoc reports whether every node of the tuple lives in one document.
func singleDoc(tuple []index.Match) bool {
	for _, m := range tuple[1:] {
		if m.Ref.Doc != tuple[0].Ref.Doc {
			return false
		}
	}
	return true
}

func (s *Searcher) scoreTuple(tuple []index.Match, opts Options) (Result, bool) {
	refs := make([]xmldoc.NodeRef, len(tuple))
	paths := make([]pathdict.PathID, len(tuple))
	content := 0.0
	for i, m := range tuple {
		refs[i] = m.Ref
		paths[i] = m.Path
		content += m.Score
	}
	w, connected := s.g.SteinerWeight(refs, opts.MaxLinkHops)
	if !connected {
		return Result{}, false // Definition 4: tuples must be connected
	}
	compact := graph.Compactness(w)
	score := content
	if !opts.ContentOnly {
		score = content * compact
	}
	return Result{
		Nodes:        refs,
		Paths:        paths,
		Score:        score,
		ContentScore: content,
		Compactness:  compact,
	}, true
}

func lessTuple(a, b []xmldoc.NodeRef) bool {
	for i := range a {
		if !a[i].Equal(b[i]) {
			return a[i].Less(b[i])
		}
	}
	return false
}

func lessDocIDs(a, b []xmldoc.DocID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
