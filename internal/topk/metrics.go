package topk

import "seda/internal/obs"

// Metrics is the search-side metric family set. A single instance is
// shared across engine generations (the serving tier owns it) so counters
// stay monotonic across ingest swaps. All fields are pre-registered; a nil
// *Metrics disables instrumentation entirely and the search path performs
// no metric work at all — sedalint's nilgate analyzer enforces the
// dominating nil check on every use in a hot package.
//
//seda:nilgated
type Metrics struct {
	// Searches counts completed top-k searches.
	Searches *obs.Counter
	// Duration is end-to-end Search latency.
	Duration *obs.Histogram
	// Waves counts TA waves executed across all searches.
	Waves *obs.Counter
	// UnitsCandidates / UnitsScanned / TuplesScored accumulate the Stats
	// counters; scanned < candidates across scrapes shows early
	// termination paying off fleet-wide.
	UnitsCandidates *obs.Counter
	UnitsScanned    *obs.Counter
	TuplesScored    *obs.Counter
	// FetchTasks counts (term × shard) index scatter tasks issued.
	FetchTasks *obs.Counter
	// EarlyTerminations counts searches that stopped on the TA threshold
	// before draining every candidate unit.
	EarlyTerminations *obs.Counter
	// Fanout is the per-search scatter width (terms × shards), a
	// distribution rather than a counter so shard-count changes show up.
	Fanout *obs.Histogram
}

// fanoutBuckets cover scatter widths from a single (term, shard) task up
// to wide queries on max-sharded engines.
var fanoutBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// NewMetrics registers the topk family set on reg under the seda_topk_*
// prefix.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Searches: reg.NewCounter("seda_topk_searches_total",
			"Completed top-k searches."),
		Duration: reg.NewHistogram("seda_topk_search_duration_seconds",
			"End-to-end top-k search latency.", nil),
		Waves: reg.NewCounter("seda_topk_waves_total",
			"TA waves executed across all searches."),
		UnitsCandidates: reg.NewCounter("seda_topk_units_candidates_total",
			"Candidate units (docs or doc pairs) with full term coverage."),
		UnitsScanned: reg.NewCounter("seda_topk_units_scanned_total",
			"Candidate units materialized before the TA threshold stopped the scan."),
		TuplesScored: reg.NewCounter("seda_topk_tuples_scored_total",
			"Scored (connected) result tuples."),
		FetchTasks: reg.NewCounter("seda_topk_fetch_tasks_total",
			"Index scatter tasks issued (terms x shards)."),
		EarlyTerminations: reg.NewCounter("seda_topk_early_terminations_total",
			"Searches stopped by the TA threshold before draining all units."),
		Fanout: reg.NewHistogram("seda_topk_scatter_fanout",
			"Per-search index scatter width (terms x shards).", fanoutBuckets),
	}
}

// observe folds one finished search into the family set.
func (m *Metrics) observe(st Stats, fetchTasks int, seconds float64) {
	m.Searches.Inc()
	m.Duration.Observe(seconds)
	m.Waves.Add(uint64(st.Waves))
	m.UnitsCandidates.Add(uint64(st.UnitsCandidates))
	m.UnitsScanned.Add(uint64(st.UnitsScanned))
	m.TuplesScored.Add(uint64(st.TuplesScored))
	m.FetchTasks.Add(uint64(fetchTasks))
	if st.EarlyTerminated {
		m.EarlyTerminations.Inc()
	}
	m.Fanout.Observe(float64(fetchTasks))
}

// Trace is the opt-in per-search execution trace behind "explain": true.
// Point Options.Trace at a zero Trace before Search and it is filled in
// place; the search allocates only into the caller's Trace (the disabled
// nil path stays allocation-free; nil-gating enforced by sedalint's
// nilgate analyzer).
//
//seda:nilgated
type Trace struct {
	// Terms and Shards give the scatter dimensions; FetchTasks = Terms*Shards.
	Terms      int `json:"terms"`
	Shards     int `json:"shards"`
	FetchTasks int `json:"fetch_tasks"`
	// PerTermMatches is the gathered match count per query term.
	PerTermMatches []int `json:"per_term_matches"`
	// FetchNs and RankNs split search time into the index scatter-gather
	// phase and the TA rank loop.
	FetchNs int64 `json:"fetch_ns"`
	RankNs  int64 `json:"rank_ns"`
	// Stats counters for this one search.
	UnitsCandidates int  `json:"units_candidates"`
	UnitsScanned    int  `json:"units_scanned"`
	TuplesScored    int  `json:"tuples_scored"`
	EarlyTerminated bool `json:"early_terminated"`
	// KthScore is the final k-th (threshold) score; 0 if fewer than k
	// results exist.
	KthScore float64 `json:"kth_score"`
	// Waves records the threshold evolution wave by wave.
	Waves []WaveTrace `json:"waves"`
}

// WaveTrace is one TA wave: how many units it scanned, the cumulative
// scan position after it, the k-th score once merged, and the bound of the
// next unscanned unit (the value the threshold is tested against; 0 when
// the wave drained the candidate list).
type WaveTrace struct {
	Units     int     `json:"units"`
	CumUnits  int     `json:"cum_units"`
	KthScore  float64 `json:"kth_score"`
	NextBound float64 `json:"next_bound"`
}
