package topk

import (
	"strings"
	"testing"

	"seda/internal/obs"
	"seda/internal/query"
)

func TestSearchFillsTrace(t *testing.T) {
	_, ix, g := fixture(t)
	s := New(ix, g)
	q := query.MustParse(`(*, "United States") AND (trade_country, *) AND (percentage, *)`)
	var tr Trace
	rs, st, err := s.SearchStats(q, Options{K: 3, Trace: &tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	if tr.Terms != 3 || tr.Shards != ix.NumShards() || tr.FetchTasks != 3*ix.NumShards() {
		t.Errorf("scatter dims = %d terms, %d shards, %d tasks", tr.Terms, tr.Shards, tr.FetchTasks)
	}
	if len(tr.PerTermMatches) != 3 {
		t.Fatalf("per-term matches = %v", tr.PerTermMatches)
	}
	for i, n := range tr.PerTermMatches {
		if n == 0 {
			t.Errorf("term %d gathered no matches", i)
		}
	}
	if tr.FetchNs < 0 || tr.RankNs <= 0 {
		t.Errorf("phase timings = fetch %dns, rank %dns", tr.FetchNs, tr.RankNs)
	}
	if tr.UnitsCandidates != st.UnitsCandidates || tr.UnitsScanned != st.UnitsScanned ||
		tr.TuplesScored != st.TuplesScored || tr.EarlyTerminated != st.EarlyTerminated {
		t.Errorf("trace stats %+v disagree with Stats %+v", tr, st)
	}
	if len(tr.Waves) != st.Waves || st.Waves == 0 {
		t.Fatalf("wave trace len = %d, Stats.Waves = %d", len(tr.Waves), st.Waves)
	}
	cum := 0
	for i, w := range tr.Waves {
		cum += w.Units
		if w.CumUnits != cum {
			t.Errorf("wave %d cum = %d, want %d", i, w.CumUnits, cum)
		}
	}
	if cum != st.UnitsScanned {
		t.Errorf("waves scanned %d units, stats say %d", cum, st.UnitsScanned)
	}
	if tr.KthScore != rs[len(rs)-1].Score {
		t.Errorf("kth score = %v, last result = %v", tr.KthScore, rs[len(rs)-1].Score)
	}
}

func TestSearchObservesMetrics(t *testing.T) {
	_, ix, g := fixture(t)
	s := New(ix, g)
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	q := query.MustParse(`(trade_country, germany) AND (percentage, *)`)
	if _, _, err := s.SearchStats(q, Options{K: 2, Metrics: m}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.SearchStats(q, Options{K: 2, Metrics: m}); err != nil {
		t.Fatal(err)
	}
	if got := m.Searches.Value(); got != 2 {
		t.Errorf("searches = %d, want 2", got)
	}
	if m.Duration.Count() != 2 || m.Fanout.Count() != 2 {
		t.Errorf("histogram counts = %d, %d, want 2", m.Duration.Count(), m.Fanout.Count())
	}
	if m.Waves.Value() == 0 || m.UnitsScanned.Value() == 0 || m.TuplesScored.Value() == 0 {
		t.Errorf("work counters stuck at zero: waves=%d scanned=%d scored=%d",
			m.Waves.Value(), m.UnitsScanned.Value(), m.TuplesScored.Value())
	}
	if want := uint64(2 * 2 * ix.NumShards()); m.FetchTasks.Value() != want {
		t.Errorf("fetch tasks = %d, want %d", m.FetchTasks.Value(), want)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ParseText(strings.NewReader(b.String())); err != nil {
		t.Fatalf("exposition unparseable: %v", err)
	}
}

// TestInstrumentationDoesNotChangeResults pins that Metrics and Trace are
// pure observers.
func TestInstrumentationDoesNotChangeResults(t *testing.T) {
	_, ix, g := fixture(t)
	s := New(ix, g)
	q := query.MustParse(`(*, "United States") AND (percentage, *)`)
	plain, err := s.Search(q, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	var tr Trace
	reg := obs.NewRegistry()
	traced, err := s.Search(q, Options{K: 5, Trace: &tr, Metrics: NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(traced) {
		t.Fatalf("result counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		sameNodes := !lessTuple(plain[i].Nodes, traced[i].Nodes) && !lessTuple(traced[i].Nodes, plain[i].Nodes)
		if plain[i].Score != traced[i].Score || !sameNodes {
			t.Fatalf("result %d differs", i)
		}
	}
}

func TestShardFetchCounters(t *testing.T) {
	_, ix, g := fixture(t)
	s := New(ix, g)
	before := uint64(0)
	for _, st := range ix.ShardStats() {
		before += st.Fetches
	}
	q := query.MustParse(`(trade_country, germany) AND (percentage, *)`)
	if _, err := s.Search(q, Options{K: 2}); err != nil {
		t.Fatal(err)
	}
	after := uint64(0)
	for _, st := range ix.ShardStats() {
		after += st.Fetches
	}
	if want := before + uint64(2*ix.NumShards()); after != want {
		t.Errorf("shard fetches = %d, want %d", after, want)
	}
}
