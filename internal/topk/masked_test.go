package topk

import (
	"fmt"
	"strings"
	"testing"

	"seda/internal/graph"
	"seda/internal/index"
	"seda/internal/query"
	"seda/internal/store"
	"seda/internal/xmldoc"
)

// TestSearchMaskedIndex pins the tombstone contract at the topk layer:
// a search over a masked index (dead documents filtered at match-fetch
// time, IDF re-derived over the survivors) returns exactly the results
// of a search over an index built from scratch over the surviving
// documents. The core lifecycle suite proves this end to end on the
// full corpora; this test keeps the layer-local failure mode local —
// a stale document frequency or an unfiltered shard fast path fails
// here without the engine on top.
func TestSearchMaskedIndex(t *testing.T) {
	c, ix, _ := fixture(t)

	// Mask doc2 (the second Mexico document): it contributes to the
	// "United States" and "mexico" postings, so both the match sets and
	// the document frequencies must shrink.
	mc, err := c.WithTombstones([]xmldoc.DocID{2})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := ix.WithTombstones(mc)
	if err != nil {
		t.Fatal(err)
	}
	mg := graph.New(mc)
	mg.DiscoverLinks(graph.DiscoverOptions{IDRefAttrs: []string{"bordering"}})

	// The scratch side: the three survivors re-added under their own
	// names (ids renumber, names identify).
	sc := store.NewCollection()
	for _, id := range []xmldoc.DocID{0, 1, 3} {
		doc := c.Doc(id)
		var b strings.Builder
		if err := doc.WriteXML(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := sc.AddXML(doc.Name, []byte(b.String())); err != nil {
			t.Fatal(err)
		}
	}
	six := index.Build(sc)
	sg := graph.New(sc)
	sg.DiscoverLinks(graph.DiscoverOptions{IDRefAttrs: []string{"bordering"}})

	render := func(col *store.Collection, rs []Result) string {
		var b strings.Builder
		for _, r := range rs {
			fmt.Fprintf(&b, "%.6f", r.Score)
			for _, n := range r.Nodes {
				fmt.Fprintf(&b, " %s@%s", col.Doc(n.Doc).Name, n.Dewey)
			}
			b.WriteByte('\n')
		}
		return b.String()
	}

	for _, qs := range []string{
		`(*, "United States")`,
		`(name, mexico)`,
		`(name, *)`,
		`(*, "United States") AND (trade_country, *) AND (percentage, *)`,
		`(trade_country, germany) AND (percentage, *)`,
	} {
		q := query.MustParse(qs)
		mrs, err := New(mix, mg).Search(q, Options{K: 10})
		if err != nil {
			t.Fatalf("%s: masked search: %v", qs, err)
		}
		srs, err := New(six, sg).Search(q, Options{K: 10})
		if err != nil {
			t.Fatalf("%s: scratch search: %v", qs, err)
		}
		if got, want := render(mc, mrs), render(sc, srs); got != want {
			t.Errorf("%s: masked search diverges from survivors\nmasked:\n%s\nscratch:\n%s", qs, got, want)
		}
		// The masked document must never surface.
		for _, r := range mrs {
			for _, n := range r.Nodes {
				if n.Doc == 2 {
					t.Fatalf("%s: masked document in results: %+v", qs, r)
				}
			}
		}
	}
}
