// Package topk implements SEDA's top-k search unit (paper §4).
//
// "SEDA employs a top-k search algorithm based on the family of threshold
// algorithms (TA). The SEDA top-k algorithm retrieves the results from
// full-text indexes and calculates top answers according to a ranking
// function which takes into account both the content score as well as the
// structural properties of the matched nodes" — the structural component
// being the compactness of the graph connecting the tuple (§1).
//
// The implementation is document-at-a-time: per-term match lists from the
// index are fetched concurrently and grouped by document; candidate units
// (documents, or pairs of link-joined documents per Definition 4) are
// scanned in decreasing order of an upper score bound, in waves whose
// boundaries double geometrically (1, 2, 4, 8, … units). Within a wave a
// pool of workers claims units and scores their tuples into per-worker
// bounded min-heaps of size K, merged into the running top-k at the wave
// barrier; the scan stops at the first barrier where the k-th best score
// reaches the next unit's bound — the TA termination condition.
//
// Checking the threshold only at wave barriers is what makes the output
// schedule-independent: the set of scanned units is a function of the
// sorted unit list alone (never of worker timing), and a bounded heap under
// the strict (score, node-order) total ordering keeps the same K tuples
// whatever order they arrive in. A parallel search therefore returns
// byte-identical results to a sequential one, while early waves (sized 1-2
// units) keep the termination check as eager as a classic unit-at-a-time
// TA loop and late waves amortize it and feed the whole worker pool.
//
// As in any TA with a non-strict stop rule, exact score ties at the
// termination threshold are resolved pragmatically: every returned tuple
// scores at least as high as every unreturned one, but which of several
// equally-scored boundary tuples fill the last slots follows the
// deterministic scan order rather than the node-order tie-break (the
// PerDocPerTerm beam makes the same latency-over-exactness trade within a
// document).
//
// # Concurrency
//
// A Searcher holds only read-only references to its index and data graph
// and is safe for concurrent use by any number of goroutines: every
// Search call owns its worker pool and all intermediate state, and
// Options.Parallelism bounds that call's workers only. The index and
// graph must not be mutated while searches run — the engine layer
// guarantees this by making both immutable per generation (incremental
// ingest derives a new index and graph rather than touching the ones a
// live Searcher reads).
//
// The package is annotated //seda:hot: sedalint's nilgate analyzer
// enforces the nil-gated observability contract on every hot path here.
//
//seda:hot
package topk
