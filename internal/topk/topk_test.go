package topk

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"seda/internal/graph"
	"seda/internal/index"
	"seda/internal/query"
	"seda/internal/store"
	"seda/internal/xmldoc"
)

// fixture: three country documents in the paper's Figure 2 shape plus a
// linked sea document.
func fixture(t testing.TB) (*store.Collection, *index.Index, *graph.Graph) {
	t.Helper()
	c := store.NewCollection()
	docs := []string{
		`<country id="us"><name>United States</name><year>2002</year><economy><GDP>10.082T</GDP></economy></country>`,
		`<country id="mx1"><name>Mexico</name><year>2003</year><economy>
			<import_partners>
				<item><trade_country>United States</trade_country><percentage>70.6%</percentage></item>
				<item><trade_country>Germany</trade_country><percentage>3.5%</percentage></item>
			</import_partners></economy></country>`,
		`<country id="mx2"><name>Mexico</name><year>2005</year><economy>
			<export_partners>
				<item><trade_country>United States</trade_country><percentage>15.3%</percentage></item>
			</export_partners></economy></country>`,
		`<sea id="pac" bordering="us"><name>Pacific Ocean</name></sea>`,
	}
	for i, d := range docs {
		if _, err := c.AddXML(fmt.Sprintf("doc%d", i), []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	ix := index.Build(c)
	g := graph.New(c)
	g.DiscoverLinks(graph.DiscoverOptions{IDRefAttrs: []string{"bordering"}})
	return c, ix, g
}

func TestQuery1TopK(t *testing.T) {
	c, ix, g := fixture(t)
	s := New(ix, g)
	q := query.MustParse(`(*, "United States") AND (trade_country, *) AND (percentage, *)`)
	rs, err := s.Search(q, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	// Best tuple should pair a US trade_country with its sibling
	// percentage (compactness favors the same item).
	best := rs[0]
	if len(best.Nodes) != 3 {
		t.Fatalf("tuple arity = %d", len(best.Nodes))
	}
	dict := c.Dict()
	tcPath := dict.Path(best.Paths[1])
	if !strings.HasSuffix(tcPath, "/item/trade_country") {
		t.Errorf("term2 path = %q", tcPath)
	}
	// The US match and trade_country should be the same node or close kin;
	// percentage must be the sibling of the trade_country.
	tc, pc := best.Nodes[1], best.Nodes[2]
	if tc.Doc != pc.Doc || graph.TreeDistance(tc, pc) != 2 {
		t.Errorf("best tuple not sibling-paired: %v %v", tc, pc)
	}
	// Scores are sorted descending.
	for i := 1; i < len(rs); i++ {
		if rs[i].Score > rs[i-1].Score {
			t.Errorf("results out of order at %d", i)
		}
	}
}

func TestCompactnessBeatsContentOnly(t *testing.T) {
	// The ablation: with compactness, the sibling pairing of
	// (trade_country=Germany, percentage=3.5%) outranks mixing Germany
	// with the other item's 70.6%. Content-only scoring cannot tell them
	// apart.
	_, ix, g := fixture(t)
	s := New(ix, g)
	q := query.MustParse(`(trade_country, germany) AND (percentage, *)`)
	rs, err := s.Search(q, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) < 2 {
		t.Fatalf("results = %d", len(rs))
	}
	best := rs[0]
	if d := graph.TreeDistance(best.Nodes[0], best.Nodes[1]); d != 2 {
		t.Errorf("best germany tuple distance = %d, want sibling (2)", d)
	}
	if best.Compactness <= rs[1].Compactness {
		t.Errorf("compactness should strictly separate: %v vs %v", best.Compactness, rs[1].Compactness)
	}
	// Content-only: both tuples tie on content, so ordering falls to the
	// deterministic tie-break, and compactness is reported but unused.
	rs2, err := s.Search(q, Options{K: 4, ContentOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if rs2[0].Score != rs2[0].ContentScore {
		t.Error("ContentOnly must ignore compactness in the score")
	}
}

func TestCrossDocTuples(t *testing.T) {
	_, ix, g := fixture(t)
	s := New(ix, g)
	// "Pacific" lives in the sea doc; "10.082T" in the US doc. They connect
	// through the bordering IDREF edge.
	q := query.MustParse(`(name, pacific) AND (GDP, *)`)
	rs, err := s.Search(q, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("cross-doc results = %d, want 1", len(rs))
	}
	if rs[0].Nodes[0].Doc == rs[0].Nodes[1].Doc {
		t.Error("expected a cross-document tuple")
	}
	// With cross-doc disabled there are no results.
	rs2, err := s.Search(q, Options{K: 3, DisableCrossDoc: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2) != 0 {
		t.Errorf("DisableCrossDoc results = %d, want 0", len(rs2))
	}
}

func TestDisconnectedTuplesExcluded(t *testing.T) {
	// Two documents with no link between them can never form a tuple
	// (Definition 4).
	c := store.NewCollection()
	for i, d := range []string{`<a><x>alpha</x></a>`, `<b><y>beta</y></b>`} {
		if _, err := c.AddXML(fmt.Sprintf("d%d", i), []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	ix := index.Build(c)
	s := New(ix, nil)
	q := query.MustParse(`(x, alpha) AND (y, beta)`)
	rs, err := s.Search(q, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("disconnected tuple returned: %v", rs)
	}
}

func TestSingleTermQuery(t *testing.T) {
	_, ix, g := fixture(t)
	s := New(ix, g)
	rs, err := s.Search(query.MustParse(`(*, mexico)`), Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %d, want 2", len(rs))
	}
	for _, r := range rs {
		if r.Compactness != 1 {
			t.Errorf("singleton compactness = %v", r.Compactness)
		}
	}
}

func TestEmptyQueryAndNoMatch(t *testing.T) {
	_, ix, g := fixture(t)
	s := New(ix, g)
	if _, err := s.Search(query.Query{}, Options{}); err == nil {
		t.Error("empty query should error")
	}
	rs, err := s.Search(query.MustParse(`(*, nosuchtoken)`), Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("results = %d", len(rs))
	}
}

func TestKLimits(t *testing.T) {
	_, ix, g := fixture(t)
	s := New(ix, g)
	q := query.MustParse(`(trade_country, *) AND (percentage, *)`)
	all, err := s.Search(q, Options{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	one, err := s.Search(q, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("K=1 returned %d", len(one))
	}
	if len(all) < 3 {
		t.Fatalf("K=100 returned %d", len(all))
	}
	if one[0].Score != all[0].Score {
		t.Errorf("K=1 best %v != K=100 best %v", one[0].Score, all[0].Score)
	}
}

// TestTAEarlyTermination verifies the threshold-algorithm behavior: with a
// small K over many candidate documents, the scan must stop before
// materializing every unit, and the results must still equal an exhaustive
// scan's.
func TestTAEarlyTermination(t *testing.T) {
	c := store.NewCollection()
	// Many documents where both terms match the same node, so the best
	// tuple per document reaches the unit's upper bound (compactness 1)
	// and the threshold condition can fire. Term frequency varies the
	// content scores across documents.
	for i := 0; i < 60; i++ {
		reps := 1 + i%5
		val := strings.TrimSpace(strings.Repeat("gold ", reps)) + " silver"
		doc := fmt.Sprintf(`<r><x>%s</x></r>`, val)
		if _, err := c.AddXML(fmt.Sprintf("d%d", i), []byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
	ix := index.Build(c)
	s := New(ix, nil)
	q := query.MustParse(`(x, gold) AND (x, silver)`)
	top, stats, err := s.SearchStats(q, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("results = %d", len(top))
	}
	if stats.UnitsCandidates != 60 {
		t.Errorf("candidates = %d, want 60", stats.UnitsCandidates)
	}
	if stats.UnitsScanned >= stats.UnitsCandidates {
		t.Errorf("no early termination: scanned %d of %d", stats.UnitsScanned, stats.UnitsCandidates)
	}
	// Exhaustive run agrees on the top scores.
	all, err := s.Search(q, Options{K: 60})
	if err != nil {
		t.Fatal(err)
	}
	for i := range top {
		if top[i].Score != all[i].Score {
			t.Errorf("rank %d: early %v vs exhaustive %v", i, top[i].Score, all[i].Score)
		}
	}
}

// linkedFixture builds a corpus of identical-content document pairs joined
// by an IDREF edge, so every pair yields single-document tuples (from both
// docs), a cross-document candidate unit, and genuine cross-document
// tuples.
func linkedFixture(t testing.TB, pairs int) (*index.Index, *graph.Graph) {
	t.Helper()
	c := store.NewCollection()
	for i := 0; i < pairs; i++ {
		reps := 1 + i%4 // vary scores so bounds are not all equal
		gold := strings.TrimSpace(strings.Repeat("gold ", reps))
		a := fmt.Sprintf(`<a id="a%d"><x>%s</x><y>silver</y></a>`, i, gold)
		b := fmt.Sprintf(`<b ref="a%d"><x>%s</x><y>silver</y></b>`, i, gold)
		if _, err := c.AddXML(fmt.Sprintf("a%d", i), []byte(a)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.AddXML(fmt.Sprintf("b%d", i), []byte(b)); err != nil {
			t.Fatal(err)
		}
	}
	ix := index.Build(c)
	g := graph.New(c)
	g.DiscoverLinks(graph.DiscoverOptions{IDRefAttrs: []string{"ref"}})
	return ix, g
}

func tupleKey(nodes []xmldoc.NodeRef) string {
	var sb strings.Builder
	for _, n := range nodes {
		fmt.Fprintf(&sb, "%v|", n)
	}
	return sb.String()
}

// TestNoDuplicateTuples is the regression test for the cross-document
// duplicate bug: a pair unit used to re-enumerate tuples living wholly
// inside one of its documents, so copies of a single tuple could fill
// several top-k slots (and corrupt the k-th threshold).
func TestNoDuplicateTuples(t *testing.T) {
	ix, g := linkedFixture(t, 6)
	s := New(ix, g)
	q := query.MustParse(`(x, gold) AND (y, silver)`)
	rs, err := s.Search(q, Options{K: 100, PerDocPerTerm: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	seen := make(map[string]bool)
	crossDoc := 0
	for _, r := range rs {
		key := tupleKey(r.Nodes)
		if seen[key] {
			t.Errorf("duplicate tuple in top-k: %s", key)
		}
		seen[key] = true
		if r.Nodes[0].Doc != r.Nodes[1].Doc {
			crossDoc++
		}
	}
	// The dedup must not throw away genuine link-joined tuples.
	if crossDoc == 0 {
		t.Error("no cross-document tuples survived")
	}
	// Each pair contributes 2 single-doc tuples and 2 cross-doc tuples.
	if want := 6 * 4; len(rs) != want {
		t.Errorf("results = %d, want %d", len(rs), want)
	}
}

// TestParallelSearchMatchesSequential: the acceptance bar for the worker
// pool — at any parallelism, and under concurrent Search calls (run with
// -race), the results must be byte-identical to a sequential scan.
func TestParallelSearchMatchesSequential(t *testing.T) {
	ix, g := linkedFixture(t, 20)
	s := New(ix, g)
	queries := []query.Query{
		query.MustParse(`(x, gold) AND (y, silver)`),
		query.MustParse(`(*, gold) AND (*, silver)`),
		query.MustParse(`(x, gold)`),
	}
	for qi, q := range queries {
		for _, k := range []int{1, 3, 10, 1000} {
			seq, err := s.Search(q, Options{K: k, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for _, par := range []int{2, 3, 8, 16} {
				wg.Add(1)
				go func(par int) {
					defer wg.Done()
					got, err := s.Search(q, Options{K: k, Parallelism: par})
					if err != nil {
						t.Errorf("query %d parallelism %d: %v", qi, par, err)
						return
					}
					if !reflect.DeepEqual(got, seq) {
						t.Errorf("query %d k=%d parallelism %d: results differ from sequential", qi, k, par)
					}
				}(par)
			}
			wg.Wait()
		}
	}
}

// bruteForce enumerates every tuple over full match lists and scores it the
// same way, as an oracle for the TA loop.
func bruteForce(t *testing.T, ix *index.Index, g *graph.Graph, q query.Query, hops int) []float64 {
	t.Helper()
	var lists [][]index.Match
	for _, term := range q.Terms {
		ms, err := ix.MatchTerm(term)
		if err != nil {
			t.Fatal(err)
		}
		lists = append(lists, ms)
	}
	var scores []float64
	tuple := make([]index.Match, len(lists))
	var rec func(i int)
	rec = func(i int) {
		if i == len(lists) {
			refs := make([]xmldoc.NodeRef, len(tuple))
			content := 0.0
			for j, m := range tuple {
				refs[j] = m.Ref
				content += m.Score
			}
			w, ok := g.SteinerWeight(refs, hops)
			if !ok {
				return
			}
			scores = append(scores, content*graph.Compactness(w))
			return
		}
		for _, m := range lists[i] {
			tuple[i] = m
			rec(i + 1)
		}
	}
	rec(0)
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	return scores
}

// TestPropTopKAgainstBruteForce: with beams disabled (huge PerDocPerTerm),
// the TA loop must return exactly the brute-force top-k scores.
func TestPropTopKAgainstBruteForce(t *testing.T) {
	vocab := []string{"red", "green", "blue"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := store.NewCollection()
		n := 2 + r.Intn(4)
		for i := 0; i < n; i++ {
			root := xmldoc.Elem("r")
			for j := 0; j < 1+r.Intn(4); j++ {
				root.Add(xmldoc.Text(fmt.Sprintf("t%d", r.Intn(3)), vocab[r.Intn(len(vocab))]))
			}
			c.AddDocument(xmldoc.Build(fmt.Sprintf("d%d", i), root, c.Dict()))
		}
		ix := index.Build(c)
		g := graph.New(c)
		s := New(ix, g)
		q := query.MustParse(`(*, red) AND (*, green)`)
		got, err := s.Search(q, Options{K: 5, PerDocPerTerm: 1000})
		if err != nil {
			return false
		}
		want := bruteForce(t, ix, g, q, 2)
		if len(want) > 5 {
			want = want[:5]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Score-want[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
