package topk

import "sort"

// better is the total order the top-k keeps: higher score first, ties broken
// deterministically by node order. It is strict — two distinct tuples never
// compare equal — which makes every bounded-heap selection below independent
// of insertion order, and hence of worker scheduling.
func better(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return lessTuple(a.Nodes, b.Nodes)
}

// topHeap keeps the best k results seen so far as a min-heap on the better
// order: rs[0] is the worst kept result, so one comparison decides whether a
// new tuple displaces it. It replaces the sort-after-every-unit frontier of
// the original TA loop — offer is O(log k) instead of re-sorting O(n log n).
// Not safe for concurrent use; each search worker owns one.
type topHeap struct {
	k  int
	rs []Result
}

func newTopHeap(k int) *topHeap { return &topHeap{k: k, rs: make([]Result, 0, k)} }

// offer inserts r if it belongs in the current top k.
func (h *topHeap) offer(r Result) {
	if len(h.rs) < h.k {
		h.rs = append(h.rs, r)
		h.siftUp(len(h.rs) - 1)
		return
	}
	if better(r, h.rs[0]) {
		h.rs[0] = r
		h.siftDown(0)
	}
}

// kth returns the score of the worst kept result; ok is false until the
// heap holds k results (no threshold can fire before the top-k is full).
func (h *topHeap) kth() (float64, bool) {
	if len(h.rs) < h.k {
		return 0, false
	}
	return h.rs[0].Score, true
}

// sorted drains the heap, best result first.
func (h *topHeap) sorted() []Result {
	out := h.rs
	h.rs = nil
	sort.Slice(out, func(i, j int) bool { return better(out[i], out[j]) })
	return out
}

func (h *topHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !better(h.rs[p], h.rs[i]) {
			break // parent is already worse-or-equal: heap property holds
		}
		h.rs[p], h.rs[i] = h.rs[i], h.rs[p]
		i = p
	}
}

func (h *topHeap) siftDown(i int) {
	n := len(h.rs)
	for {
		worst := i
		for c := 2*i + 1; c <= 2*i+2 && c < n; c++ {
			if better(h.rs[worst], h.rs[c]) {
				worst = c
			}
		}
		if worst == i {
			return
		}
		h.rs[i], h.rs[worst] = h.rs[worst], h.rs[i]
		i = worst
	}
}
