package topk

import (
	"fmt"
	"sort"

	"seda/internal/index"
	"seda/internal/query"
	"seda/internal/xmldoc"
)

// SearchRankJoin is an alternative top-k strategy in the classic threshold-
// algorithm style (Fagin's TA adapted to joins — the hash rank join of
// Ilyas et al.): per-term match streams are consumed in descending content-
// score order (sorted access); each newly seen match joins against the
// already-seen matches of the other terms within the same document; the
// scan stops when the k-th materialized score reaches the TA threshold
//
//	T = max_i ( frontier_i + Σ_{j≠i} top_j ) × maxCompactness(=1)
//
// the best score any tuple containing an unseen match could still achieve.
//
// The paper's §4 makes exactly this pluggability point: "we can use any
// top-k search algorithm that works on data graphs". This strategy
// considers same-document tuples only (it is the baseline the benchmarks
// compare the document-at-a-time engine against); use Search for
// link-spanning tuples.
func (s *Searcher) SearchRankJoin(q query.Query, opts Options) ([]Result, Stats, error) {
	opts.defaults()
	if len(q.Terms) == 0 {
		return nil, Stats{}, fmt.Errorf("topk: empty query")
	}
	m := len(q.Terms)
	streams := make([][]index.Match, m)
	for i, t := range q.Terms {
		ms, err := s.ix.MatchTerm(t)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("topk: term %d: %w", i, err)
		}
		sorted := make([]index.Match, len(ms))
		copy(sorted, ms)
		sort.Slice(sorted, func(a, b int) bool {
			if sorted[a].Score != sorted[b].Score {
				return sorted[a].Score > sorted[b].Score
			}
			return sorted[a].Ref.Less(sorted[b].Ref)
		})
		streams[i] = sorted
	}

	// seen[i][doc] = matches of term i consumed so far, by document.
	seen := make([]map[xmldoc.DocID][]index.Match, m)
	for i := range seen {
		seen[i] = make(map[xmldoc.DocID][]index.Match)
	}
	pos := make([]int, m)
	top := make([]float64, m) // top (first) score per stream
	for i, st := range streams {
		if len(st) == 0 {
			return nil, Stats{}, nil // a term with no matches kills every tuple
		}
		top[i] = st[0].Score
	}

	results := newTopHeap(opts.K)
	stats := Stats{UnitsCandidates: totalLen(streams)}
	kth := func() float64 {
		t, ok := results.kth()
		if !ok {
			return -1
		}
		return t
	}
	threshold := func() float64 {
		best := -1.0
		for i := range streams {
			if pos[i] >= len(streams[i]) {
				continue
			}
			t := streams[i][pos[i]].Score
			for j := range streams {
				if j != i {
					t += top[j]
				}
			}
			if t > best {
				best = t
			}
		}
		return best
	}

	for {
		// Pick the stream whose frontier is highest (a common HRJN pull
		// strategy); round-robin would also be correct.
		pick := -1
		bestScore := -1.0
		for i := range streams {
			if pos[i] < len(streams[i]) && streams[i][pos[i]].Score > bestScore {
				pick, bestScore = i, streams[i][pos[i]].Score
			}
		}
		if pick < 0 {
			break // all streams exhausted
		}
		if t := kth(); t >= 0 && t >= threshold() {
			break // TA stop condition
		}
		mt := streams[pick][pos[pick]]
		pos[pick]++
		stats.UnitsScanned++

		// Join the new match against seen matches of every other term in
		// the same document.
		tuple := make([]index.Match, m)
		tuple[pick] = mt
		var rec func(term int)
		rec = func(term int) {
			if term == m {
				if r, ok := s.scoreTuple(tuple, opts); ok {
					stats.TuplesScored++
					results.offer(r)
				}
				return
			}
			if term == pick {
				rec(term + 1)
				return
			}
			for _, other := range seen[term][mt.Ref.Doc] {
				tuple[term] = other
				rec(term + 1)
			}
		}
		rec(0)
		seen[pick][mt.Ref.Doc] = append(seen[pick][mt.Ref.Doc], mt)
	}
	return results.sorted(), stats, nil
}

func totalLen(streams [][]index.Match) int {
	n := 0
	for _, s := range streams {
		n += len(s)
	}
	return n
}
