package summary

import (
	"fmt"
	"sort"
	"strings"

	"seda/internal/pathdict"
)

// ExportDOT renders a connection summary as a Graphviz digraph — the
// library counterpart of the paper's §6 GUI: "SEDA displays these
// connections in a visual graph representation and allows the user to pick
// or drop connections". Nodes are the query terms' context paths; solid
// edges are tree connections labeled with their join path; dashed edges
// are link connections labeled with the relationship (mirroring Figure 1's
// dashed non-tree edges). False positives render grey.
func ExportDOT(dict *pathdict.Dict, conns []Connection) string {
	var b strings.Builder
	b.WriteString("digraph connections {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")

	nodeID := make(map[string]string)
	var order []string
	node := func(termIdx int, p pathdict.PathID) string {
		key := fmt.Sprintf("t%d:%s", termIdx, dict.Path(p))
		if id, ok := nodeID[key]; ok {
			return id
		}
		id := fmt.Sprintf("n%d", len(nodeID))
		nodeID[key] = id
		order = append(order, key)
		return id
	}
	type edge struct {
		from, to, attrs string
	}
	var edges []edge
	for _, c := range conns {
		fa := node(c.TermA, c.PathA)
		fb := node(c.TermB, c.PathB)
		color := "black"
		if c.FalsePositive {
			color = "grey"
		}
		switch c.Kind {
		case Tree:
			edges = append(edges, edge{fa, fb, fmt.Sprintf(
				"label=%q, color=%s, dir=none", "via "+dict.Path(c.JoinPath), color)})
		default:
			edges = append(edges, edge{fa, fb, fmt.Sprintf(
				"label=%q, color=%s, style=dashed, dir=none", fmt.Sprintf("%s:%s", c.Link.Kind, c.Link.Label), color)})
		}
	}
	// Deterministic node declarations.
	sort.Strings(order)
	for _, key := range order {
		term, path, _ := strings.Cut(key, ":")
		fmt.Fprintf(&b, "  %s [label=%q];\n", nodeID[key], term+"\n"+path)
	}
	for _, e := range edges {
		fmt.Fprintf(&b, "  %s -> %s [%s];\n", e.from, e.to, e.attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
