package summary

import (
	"sort"
	"strings"
	"sync"
)

// EntityRegistry implements §5's context abstraction: "a context can be
// further abstracted and represented by a real-world entity, if such
// information is available". Users (or an administrator) register entity
// labels for paths or path prefixes; the context summary then annotates
// each context with the deepest matching label, so "/country/economy/
// import_partners/item/trade_country" can surface as "import partner"
// rather than a raw path.
type EntityRegistry struct {
	mu sync.RWMutex
	// exact path (or prefix when registered with RegisterPrefix) -> label
	exact    map[string]string // guarded by mu
	prefixes []prefixEntry     // guarded by mu
}

type prefixEntry struct {
	prefix string
	label  string
}

// NewEntityRegistry returns an empty registry.
func NewEntityRegistry() *EntityRegistry {
	return &EntityRegistry{exact: make(map[string]string)}
}

// Register labels one exact context path.
func (r *EntityRegistry) Register(path, label string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.exact[path] = label
}

// RegisterPrefix labels every context under the given path prefix (the
// deepest registered prefix wins).
func (r *EntityRegistry) RegisterPrefix(prefix, label string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prefixes = append(r.prefixes, prefixEntry{prefix: prefix, label: label})
	sort.Slice(r.prefixes, func(i, j int) bool {
		return len(r.prefixes[i].prefix) > len(r.prefixes[j].prefix)
	})
}

// Lookup returns the entity label for a context path, or "".
func (r *EntityRegistry) Lookup(path string) string {
	if r == nil {
		return ""
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if l, ok := r.exact[path]; ok {
		return l
	}
	for _, p := range r.prefixes {
		if path == p.prefix || strings.HasPrefix(path, p.prefix+"/") {
			return p.label
		}
	}
	return ""
}

// Len returns the number of registered labels.
func (r *EntityRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.exact) + len(r.prefixes)
}

// Annotate fills the Entity field of every entry in the buckets.
func (r *EntityRegistry) Annotate(buckets []ContextBucket) {
	if r == nil {
		return
	}
	for bi := range buckets {
		for ei := range buckets[bi].Entries {
			buckets[bi].Entries[ei].Entity = r.Lookup(buckets[bi].Entries[ei].PathString)
		}
	}
}
