package summary

import (
	"fmt"
	"testing"

	"seda/internal/dataguide"
	"seda/internal/graph"
	"seda/internal/index"
	"seda/internal/query"
	"seda/internal/store"
	"seda/internal/topk"
)

// fixture mirrors the paper's running example: "United States" in three
// contexts, trade_country and percentage each in two (import/export).
func fixture(t testing.TB) (*store.Collection, *index.Index, *graph.Graph, *dataguide.Set) {
	t.Helper()
	c := store.NewCollection()
	docs := []string{
		`<country><name>United States</name><year>2002</year><economy><GDP>10.082T</GDP></economy></country>`,
		`<country><name>Mexico</name><year>2003</year><economy>
			<import_partners>
				<item><trade_country>United States</trade_country><percentage>70.6%</percentage></item>
				<item><trade_country>Germany</trade_country><percentage>3.5%</percentage></item>
			</import_partners></economy></country>`,
		`<country><name>Mexico</name><year>2005</year><economy>
			<export_partners>
				<item><trade_country>United States</trade_country><percentage>15.3%</percentage></item>
			</export_partners></economy></country>`,
	}
	for i, d := range docs {
		if _, err := c.AddXML(fmt.Sprintf("doc%d", i), []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	ix := index.Build(c)
	g := graph.New(c)
	dg, err := dataguide.BuildWithGraph(c, g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	return c, ix, g, dg
}

var query1 = `(*, "United States") AND (trade_country, *) AND (percentage, *)`

func TestContextSummaryQuery1(t *testing.T) {
	_, ix, _, _ := fixture(t)
	buckets := Contexts(ix, query.MustParse(query1))
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	// Term 1: "United States" in 3 contexts (name, import tc, export tc).
	if got := len(buckets[0].Entries); got != 3 {
		t.Fatalf("US contexts = %d, want 3: %v", got, entryPaths(buckets[0]))
	}
	// Term 2: trade_country in 2 contexts; term 3: percentage in 2.
	if got := len(buckets[1].Entries); got != 2 {
		t.Errorf("trade_country contexts = %d, want 2: %v", got, entryPaths(buckets[1]))
	}
	if got := len(buckets[2].Entries); got != 2 {
		t.Errorf("percentage contexts = %d, want 2: %v", got, entryPaths(buckets[2]))
	}
	// 3 x 2 x 2 = the paper's "12 different ways of combining these nodes".
	combos := len(buckets[0].Entries) * len(buckets[1].Entries) * len(buckets[2].Entries)
	if combos != 12 {
		t.Errorf("combinations = %d, want 12", combos)
	}
	// Frequencies are collection-wide document frequencies, sorted desc.
	e := buckets[0].Entries
	for i := 1; i < len(e); i++ {
		if e[i-1].DocFreq < e[i].DocFreq {
			t.Error("entries not sorted by DocFreq")
		}
	}
	// /country/name appears in all 3 docs.
	for _, en := range e {
		if en.PathString == "/country/name" && en.DocFreq != 3 {
			t.Errorf("/country/name DocFreq = %d, want 3", en.DocFreq)
		}
	}
}

func TestContextSummaryWithPathContext(t *testing.T) {
	_, ix, _, _ := fixture(t)
	q := query.MustParse(`(/country/economy/import_partners/item/trade_country, "United States")`)
	buckets := Contexts(ix, q)
	if len(buckets[0].Entries) != 1 {
		t.Fatalf("entries = %v", entryPaths(buckets[0]))
	}
	if buckets[0].Entries[0].PathString != "/country/economy/import_partners/item/trade_country" {
		t.Errorf("path = %q", buckets[0].Entries[0].PathString)
	}
}

func TestContextSummaryLiftedContext(t *testing.T) {
	_, ix, _, _ := fixture(t)
	// (country, "United States"): the term's matches lift to /country, and
	// the summary shows the anchor paths below it.
	q := query.MustParse(`(country, "United States")`)
	buckets := Contexts(ix, q)
	if len(buckets[0].Entries) != 3 {
		t.Errorf("entries = %v", entryPaths(buckets[0]))
	}
}

func entryPaths(b ContextBucket) []string {
	var out []string
	for _, e := range b.Entries {
		out = append(out, e.PathString)
	}
	return out
}

func runTopK(t *testing.T, ix *index.Index, g *graph.Graph, qs string, k int) []topk.Result {
	t.Helper()
	s := topk.New(ix, g)
	rs, err := s.Search(query.MustParse(qs), topk.Options{K: k, PerDocPerTerm: 100})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestConnectionSummaryTwoWays(t *testing.T) {
	c, ix, g, dg := fixture(t)
	// Restrict to the import context as the paper's user does, then
	// summarize connections between trade_country and percentage.
	rs := runTopK(t, ix, g,
		`(/country/economy/import_partners/item/trade_country, *) AND (/country/economy/import_partners/item/percentage, *)`, 50)
	if len(rs) != 4 {
		t.Fatalf("top-k results = %d, want 4 (2x2 items)", len(rs))
	}
	s := NewSummarizer(dg, g)
	conns := s.Connections(rs)
	var trees []Connection
	for _, cn := range conns {
		if cn.Kind == Tree {
			trees = append(trees, cn)
		}
	}
	if len(trees) != 2 {
		t.Fatalf("tree connections = %d, want 2 (same item / across items): %v",
			len(trees), describeAll(c, conns))
	}
	dict := c.Dict()
	joins := []string{dict.Path(trees[0].JoinPath), dict.Path(trees[1].JoinPath)}
	wantItem := "/country/economy/import_partners/item"
	wantIP := "/country/economy/import_partners"
	if !(joins[0] == wantItem && joins[1] == wantIP) {
		t.Errorf("joins = %v (support ordering should put same-item first)", joins)
	}
	// Both connections are instantiated: same-item pairs (2) and
	// cross-item pairs (2).
	if trees[0].Support != 2 || trees[1].Support != 2 {
		t.Errorf("supports = %d, %d", trees[0].Support, trees[1].Support)
	}
	for _, tr := range trees {
		if tr.FalsePositive {
			t.Errorf("instantiated connection marked false positive: %s", tr.Describe(dict))
		}
	}
	// Shorter connection (same item) sorts first on equal support.
	if trees[0].Length >= trees[1].Length {
		t.Errorf("lengths = %d, %d", trees[0].Length, trees[1].Length)
	}
}

func TestConnectionFalsePositives(t *testing.T) {
	// A corpus where the dataguide proposes a cross-item connection but the
	// keyword restriction leaves only one item in the results: the
	// cross-item connection gets no support and is flagged (§6.1).
	c := store.NewCollection()
	if _, err := c.AddXML("d", []byte(`<country><economy><import_partners>
		<item><trade_country>China</trade_country><percentage>15%</percentage></item>
		<item><trade_country>Canada</trade_country><percentage>16.9%</percentage></item>
	 </import_partners></economy></country>`)); err != nil {
		t.Fatal(err)
	}
	ix := index.Build(c)
	g := graph.New(c)
	dg, err := dataguide.BuildWithGraph(c, g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	rs := runTopK(t, ix, g, `(trade_country, china) AND (percentage, "15%")`, 10)
	if len(rs) != 1 {
		t.Fatalf("results = %d, want 1", len(rs))
	}
	s := NewSummarizer(dg, g)
	conns := s.Connections(rs)
	if len(conns) != 2 {
		t.Fatalf("connections = %d, want 2: %v", len(conns), describeAll(c, conns))
	}
	var fp, tp int
	for _, cn := range conns {
		if cn.FalsePositive {
			fp++
		} else {
			tp++
		}
	}
	if fp != 1 || tp != 1 {
		t.Errorf("false positives = %d, true = %d, want 1/1", fp, tp)
	}
}

func TestConnectionCache(t *testing.T) {
	_, ix, g, dg := fixture(t)
	rs := runTopK(t, ix, g, `(trade_country, *) AND (percentage, *)`, 50)
	s := NewSummarizer(dg, g)
	s.Connections(rs)
	missesAfterFirst := s.CacheMisses
	if missesAfterFirst == 0 {
		t.Fatal("first run should miss")
	}
	s.Connections(rs)
	if s.CacheMisses != missesAfterFirst {
		t.Errorf("second run missed: %d -> %d", missesAfterFirst, s.CacheMisses)
	}
	if s.CacheHits == 0 {
		t.Error("second run should hit the cache")
	}
	// NoCache disables it.
	s2 := NewSummarizer(dg, g)
	s2.NoCache = true
	s2.Connections(rs)
	s2.Connections(rs)
	if s2.CacheHits != 0 {
		t.Error("NoCache must never hit")
	}
}

func TestConnectionLinkEdges(t *testing.T) {
	c := store.NewCollection()
	for i, d := range []string{
		`<country id="us"><name>United States</name></country>`,
		`<sea id="pac" bordering="us"><name>Pacific Ocean</name></sea>`,
	} {
		if _, err := c.AddXML(fmt.Sprintf("d%d", i), []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	ix := index.Build(c)
	g := graph.New(c)
	g.DiscoverLinks(graph.DiscoverOptions{IDRefAttrs: []string{"bordering"}})
	dg, err := dataguide.BuildWithGraph(c, g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	rs := runTopK(t, ix, g, `(name, pacific) AND (name, united)`, 10)
	if len(rs) != 1 {
		t.Fatalf("results = %d", len(rs))
	}
	s := NewSummarizer(dg, g)
	conns := s.Connections(rs)
	found := false
	for _, cn := range conns {
		if cn.Kind == LinkEdge && cn.Support > 0 {
			found = true
			if cn.Link.Label != "sea" {
				t.Errorf("link label = %q", cn.Link.Label)
			}
		}
	}
	if !found {
		t.Errorf("no supported link connection: %v", describeAll(c, conns))
	}
}

func TestConnectionsEmptyResults(t *testing.T) {
	_, _, g, dg := fixture(t)
	s := NewSummarizer(dg, g)
	if got := s.Connections(nil); got != nil {
		t.Errorf("Connections(nil) = %v", got)
	}
}

func describeAll(c *store.Collection, conns []Connection) []string {
	var out []string
	for _, cn := range conns {
		out = append(out, fmt.Sprintf("%s (support=%d fp=%v)", cn.Describe(c.Dict()), cn.Support, cn.FalsePositive))
	}
	return out
}
