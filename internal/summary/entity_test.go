package summary

import (
	"testing"

	"seda/internal/query"
)

func TestEntityRegistryLookup(t *testing.T) {
	r := NewEntityRegistry()
	r.Register("/country/name", "country")
	r.RegisterPrefix("/country/economy/import_partners", "import partner")
	r.RegisterPrefix("/country/economy", "economy statistic")

	cases := []struct{ path, want string }{
		{"/country/name", "country"},
		{"/country/economy/import_partners/item/trade_country", "import partner"},
		{"/country/economy/import_partners", "import partner"},
		{"/country/economy/GDP", "economy statistic"},
		{"/country/year", ""},
		// No false prefix match on partial step names.
		{"/country/economy/import_partnersX", "economy statistic"},
	}
	for _, c := range cases {
		if got := r.Lookup(c.path); got != c.want {
			t.Errorf("Lookup(%q) = %q, want %q", c.path, got, c.want)
		}
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
	// Exact beats prefix.
	r.Register("/country/economy/GDP", "gross domestic product")
	if got := r.Lookup("/country/economy/GDP"); got != "gross domestic product" {
		t.Errorf("exact override = %q", got)
	}
	// Nil registry is inert.
	var nilReg *EntityRegistry
	if nilReg.Lookup("/x") != "" {
		t.Error("nil registry lookup should be empty")
	}
	nilReg.Annotate(nil)
}

func TestEntityAnnotationInContextSummary(t *testing.T) {
	_, ix, _, _ := fixture(t)
	buckets := Contexts(ix, query.MustParse(`(*, "United States")`))
	r := NewEntityRegistry()
	r.Register("/country/name", "country")
	r.RegisterPrefix("/country/economy/import_partners", "import partner")
	r.RegisterPrefix("/country/economy/export_partners", "export partner")
	r.Annotate(buckets)
	got := map[string]string{}
	for _, e := range buckets[0].Entries {
		got[e.PathString] = e.Entity
	}
	if got["/country/name"] != "country" {
		t.Errorf("name entity = %q", got["/country/name"])
	}
	if got["/country/economy/import_partners/item/trade_country"] != "import partner" {
		t.Errorf("import entity = %q", got["/country/economy/import_partners/item/trade_country"])
	}
	if got["/country/economy/export_partners/item/trade_country"] != "export partner" {
		t.Errorf("export entity = %q", got["/country/economy/export_partners/item/trade_country"])
	}
}
