package summary

import (
	"strings"
	"testing"
)

func TestExportDOT(t *testing.T) {
	c, ix, g, dg := fixture(t)
	rs := runTopK(t, ix, g,
		`(/country/economy/import_partners/item/trade_country, *) AND (/country/economy/import_partners/item/percentage, *)`, 50)
	s := NewSummarizer(dg, g)
	conns := s.Connections(rs)
	dot := ExportDOT(c.Dict(), conns)
	if !strings.HasPrefix(dot, "digraph connections {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("not a digraph:\n%s", dot)
	}
	for _, want := range []string{
		"via /country/economy/import_partners/item",
		"via /country/economy/import_partners",
		"trade_country",
		"percentage",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Deterministic output.
	if dot != ExportDOT(c.Dict(), conns) {
		t.Error("DOT output not deterministic")
	}
}

func TestExportDOTFalsePositiveStyling(t *testing.T) {
	c, ix, g, dg := fixture(t)
	// Restrict results so the cross-item connection is unsupported.
	rs := runTopK(t, ix, g, `(trade_country, germany) AND (percentage, "3.5%")`, 10)
	s := NewSummarizer(dg, g)
	conns := s.Connections(rs)
	dot := ExportDOT(c.Dict(), conns)
	if !strings.Contains(dot, "grey") {
		t.Errorf("false positive not greyed:\n%s", dot)
	}
}
