// Package summary implements SEDA's two result summaries (paper §5, §6):
// the context summary, which shows every distinct path a query term can
// appear in so the user can disambiguate entities, and the connection
// summary, which proposes the possible relationships between the matched
// node types so the user can disambiguate how they join.
package summary

import (
	"sort"

	"seda/internal/index"
	"seda/internal/pathdict"
	"seda/internal/query"
)

// ContextEntry is one row of a context bucket: a path the term occurs in,
// with collection-wide frequencies. Per §5, SEDA deliberately shows "the
// absolute frequency of the path itself, irrespective of the keyword ...
// to give the user some idea about the structural properties of the data".
type ContextEntry struct {
	Path        pathdict.PathID
	PathString  string
	DocFreq     int // documents containing the path, out of the whole collection
	Occurrences int // total node occurrences of the path
	// Entity is the real-world entity label of the context when an
	// EntityRegistry knows one (§5's abstraction), e.g. "import partner".
	Entity string
}

// ContextBucket is the context summary of one query term.
type ContextBucket struct {
	Term    query.Term
	Entries []ContextEntry // sorted by DocFreq descending, then path
}

// Contexts computes a context bucket per query term (§5). The index probe
// depends on the term's shape:
//
//   - search-only terms run the search expression against the Figure 8
//     context index;
//   - terms with a full root-to-leaf context probe with the path's last tag
//     name in conjunction with the search expression;
//   - tag-name contexts (with wildcards) probe with the tag name in
//     conjunction with the search expression.
func Contexts(ix *index.Index, q query.Query) []ContextBucket {
	col := ix.Collection()
	dict := col.Dict()
	out := make([]ContextBucket, 0, len(q.Terms))
	for _, t := range q.Terms {
		paths := ix.PathsForExpr(t.Search)
		bucket := ContextBucket{Term: t}
		for p := range paths {
			if !contextCovers(dict, t.Context, p) {
				continue
			}
			bucket.Entries = append(bucket.Entries, ContextEntry{
				Path:        p,
				PathString:  dict.Path(p),
				DocFreq:     col.PathDocFreq(p),
				Occurrences: col.PathOccurrences(p),
			})
		}
		sort.Slice(bucket.Entries, func(i, j int) bool {
			if bucket.Entries[i].DocFreq != bucket.Entries[j].DocFreq {
				return bucket.Entries[i].DocFreq > bucket.Entries[j].DocFreq
			}
			return bucket.Entries[i].PathString < bucket.Entries[j].PathString
		})
		out = append(out, bucket)
	}
	return out
}

// contextCovers is the context filter for summary purposes. Unlike node
// matching, a term whose search expression anchors below the context (e.g.
// (country, "Romania")) should present the *context's* candidate paths, so
// a path is kept if the context matches it directly or matches one of its
// ancestor prefixes (the anchor's lift targets).
func contextCovers(dict *pathdict.Dict, ctx query.Context, p pathdict.PathID) bool {
	if ctx.IsEmpty() {
		return true
	}
	for cur := p; cur != pathdict.InvalidPath; cur = dict.Parent(cur) {
		if ctx.Matches(dict, cur) {
			return true
		}
	}
	return false
}
