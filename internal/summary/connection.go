package summary

import (
	"fmt"
	"sort"
	"sync"

	"seda/internal/dataguide"
	"seda/internal/dewey"
	"seda/internal/graph"
	"seda/internal/pathdict"
	"seda/internal/topk"
)

// ConnKind distinguishes tree connections (join through a common ancestor
// element) from link connections (IDREF/XLink/value edges).
type ConnKind uint8

// Connection kinds.
const (
	Tree ConnKind = iota
	LinkEdge
)

// Connection is one proposed relationship between the matches of two query
// terms (paper §6: "instead of computing connected graphs, we show pairwise
// connections between the matching nodes").
type Connection struct {
	TermA, TermB int // query term indexes, TermA < TermB
	PathA, PathB pathdict.PathID
	Kind         ConnKind
	// JoinPath is the common-ancestor path instances join through (Tree
	// connections). The §6 example yields two: .../item ("same item") and
	// .../import_partners ("across items").
	JoinPath pathdict.PathID
	// Link describes the edge for LinkEdge connections.
	Link dataguide.Link
	// Length is the number of edges on the connection (shortest in the
	// dataguide, per §6.1).
	Length int
	// Support counts top-k result tuples instantiating this connection.
	Support int
	// FalsePositive marks connections proposed by the dataguide summary
	// with no instantiation in the top-k results (§6.1: merged guides and
	// keyword restrictions cause these).
	FalsePositive bool
}

// Describe renders a human-readable description of the connection.
func (c Connection) Describe(dict *pathdict.Dict) string {
	switch c.Kind {
	case Tree:
		return fmt.Sprintf("%s ~ %s via %s", dict.Path(c.PathA), dict.Path(c.PathB), dict.Path(c.JoinPath))
	default:
		return fmt.Sprintf("%s -[%s:%s]- %s", dict.Path(c.PathA), c.Link.Kind, c.Link.Label, dict.Path(c.PathB))
	}
}

// Summarizer computes connection summaries against a dataguide set and a
// data graph. It caches per path-pair candidates, the optimization §6.1
// describes ("we cache the connections we discover so that we can leverage
// the cache for later query hits"). The cache is shared across every
// session of one engine, so Connections is safe for concurrent use; the
// instrumentation counters are only coherent to read once callers are
// quiescent.
type Summarizer struct {
	dg   *dataguide.Set
	g    *graph.Graph
	dict *pathdict.Dict

	mu    sync.Mutex
	cache map[[2]pathdict.PathID][]Connection // guarded by mu
	// CacheHits and CacheMisses instrument the cache for the ablation
	// benchmarks; read them via CacheStats.
	CacheHits   int // guarded by mu
	CacheMisses int // guarded by mu
	// NoCache disables the cache (ablation A3). Set it before sharing the
	// Summarizer between goroutines.
	NoCache bool
}

// NewSummarizer returns a Summarizer over the given summaries and graph.
func NewSummarizer(dg *dataguide.Set, g *graph.Graph) *Summarizer {
	return &Summarizer{
		dg:    dg,
		g:     g,
		dict:  g.Collection().Dict(),
		cache: make(map[[2]pathdict.PathID][]Connection),
	}
}

// CacheStats returns the hit/miss counters under the cache lock.
func (s *Summarizer) CacheStats() (hits, misses int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.CacheHits, s.CacheMisses
}

// Connections computes the connection summary for a set of top-k results:
// for every query-term pair and every distinct (path, path) combination
// observed in the results, the dataguide-derived candidate connections,
// with per-candidate support counts and false-positive marks.
func (s *Summarizer) Connections(results []topk.Result) []Connection {
	if len(results) == 0 {
		return nil
	}
	m := len(results[0].Nodes)
	type pairKey struct {
		a, b   int
		pa, pb pathdict.PathID
	}
	agg := make(map[pairKey][]Connection)
	for _, r := range results {
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				k := pairKey{a: i, b: j, pa: r.Paths[i], pb: r.Paths[j]}
				cands, ok := agg[k]
				if !ok {
					cands = s.candidates(k.pa, k.pb)
					// Re-tag with term indexes.
					for x := range cands {
						cands[x].TermA, cands[x].TermB = i, j
					}
					agg[k] = cands
				}
				// Attribute this instance pair to the matching candidate.
				s.support(agg[k], r, i, j)
			}
		}
	}
	var out []Connection
	for _, cands := range agg {
		for _, c := range cands {
			c.FalsePositive = c.Support == 0
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if a.Length != b.Length {
			return a.Length < b.Length
		}
		return a.Describe(s.dict) < b.Describe(s.dict)
	})
	return out
}

// candidates returns the possible connections between two paths, from the
// cache when warm.
func (s *Summarizer) candidates(pa, pb pathdict.PathID) []Connection {
	key := [2]pathdict.PathID{pa, pb}
	if !s.NoCache {
		s.mu.Lock()
		cs, ok := s.cache[key]
		if ok {
			s.CacheHits++
			out := cloneConns(cs)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.CacheMisses++
	s.mu.Unlock()
	var out []Connection
	// Tree connections from every guide containing both paths. Multiple
	// guides can propose the same join path; dedupe keeping the shortest
	// (§6.1: "If there are multiple paths between two dataguide nodes, the
	// algorithm chooses the one with the shortest path").
	seenJoin := make(map[pathdict.PathID]bool)
	for _, g := range s.dg.GuidesContaining(pa) {
		if !g.Contains(pb) {
			continue
		}
		for _, join := range g.TreeConnections(s.dict, pa, pb) {
			if seenJoin[join] {
				continue
			}
			seenJoin[join] = true
			length := (s.dict.Depth(pa) - s.dict.Depth(join)) + (s.dict.Depth(pb) - s.dict.Depth(join))
			out = append(out, Connection{
				PathA: pa, PathB: pb, Kind: Tree, JoinPath: join, Length: length,
			})
		}
	}
	// Link connections: an edge whose endpoint paths are ancestors-or-self
	// of pa and pb connects the pair (the matched nodes reach the edge
	// endpoints through tree steps). Length counts those tree steps plus
	// the edge. Links are deduplicated on (paths, kind, label): the same
	// relationship between different guide pairs is one user-facing
	// connection.
	seenLink := make(map[string]bool)
	for _, l := range s.dg.Links {
		var fromDepth, toDepth int
		switch {
		case s.dict.IsPrefixOf(l.FromPath, pa) && s.dict.IsPrefixOf(l.ToPath, pb):
			fromDepth, toDepth = s.dict.Depth(pa)-s.dict.Depth(l.FromPath), s.dict.Depth(pb)-s.dict.Depth(l.ToPath)
		case s.dict.IsPrefixOf(l.FromPath, pb) && s.dict.IsPrefixOf(l.ToPath, pa):
			fromDepth, toDepth = s.dict.Depth(pb)-s.dict.Depth(l.FromPath), s.dict.Depth(pa)-s.dict.Depth(l.ToPath)
		default:
			continue
		}
		lk := fmt.Sprintf("%d|%d|%d|%s", l.FromPath, l.ToPath, l.Kind, l.Label)
		if seenLink[lk] {
			continue
		}
		seenLink[lk] = true
		out = append(out, Connection{
			PathA: pa, PathB: pb, Kind: LinkEdge, Link: l, Length: fromDepth + toDepth + 1,
		})
	}
	if !s.NoCache {
		s.mu.Lock()
		s.cache[key] = cloneConns(out)
		s.mu.Unlock()
	}
	return out
}

// support attributes one result tuple's (i, j) node pair to the candidate
// connection it instantiates.
func (s *Summarizer) support(cands []Connection, r topk.Result, i, j int) {
	a, b := r.Nodes[i], r.Nodes[j]
	if a.Doc == b.Doc {
		l := dewey.LCA(a.Dewey, b.Dewey)
		joinPath := s.dict.AncestorAtDepth(r.Paths[i], l.Level())
		for x := range cands {
			if cands[x].Kind == Tree && cands[x].JoinPath == joinPath {
				cands[x].Support++
				return
			}
		}
		return
	}
	// Cross-document: find a link edge between ancestors-or-self of the two
	// nodes.
	for x := range cands {
		if cands[x].Kind != LinkEdge {
			continue
		}
		for _, e := range s.g.EdgesOfDoc(a.Doc) {
			touchesA := e.From.Doc == a.Doc && e.From.Dewey.IsAncestorOrSelf(a.Dewey) ||
				e.To.Doc == a.Doc && e.To.Dewey.IsAncestorOrSelf(a.Dewey)
			touchesB := e.From.Doc == b.Doc && e.From.Dewey.IsAncestorOrSelf(b.Dewey) ||
				e.To.Doc == b.Doc && e.To.Dewey.IsAncestorOrSelf(b.Dewey)
			if touchesA && touchesB && e.Label == cands[x].Link.Label && e.Kind == cands[x].Link.Kind {
				cands[x].Support++
				return
			}
		}
	}
}

func cloneConns(cs []Connection) []Connection {
	out := make([]Connection, len(cs))
	copy(out, cs)
	return out
}
