package store

import (
	"encoding/gob"
	"fmt"
	"io"

	"seda/internal/xmldoc"
)

// Persistence encodes a collection as a gob stream. Documents are
// flattened to pre-order node lists (parent pointers and Dewey ids are
// reconstructed on load), which keeps the format free of cycles and
// independent of in-memory layout.

type flatNode struct {
	Tag      string
	Kind     uint8
	Text     string
	Children int32 // number of direct children following in pre-order
}

type flatDoc struct {
	Name  string
	Nodes []flatNode
}

type snapshot struct {
	Version int
	Docs    []flatDoc
}

const snapshotVersion = 1

// Save writes the collection to w. Indexes and graphs are derived data and
// are rebuilt after Load.
func (c *Collection) Save(w io.Writer) error {
	snap := snapshot{Version: snapshotVersion, Docs: make([]flatDoc, len(c.docs))}
	for i, d := range c.docs {
		fd := flatDoc{Name: d.Name}
		flatten(d.Root, &fd.Nodes)
		snap.Docs[i] = fd
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	return nil
}

// Load reads a collection previously written by Save.
func Load(r io.Reader) (*Collection, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("store: load: unsupported snapshot version %d", snap.Version)
	}
	c := NewCollection()
	for _, fd := range snap.Docs {
		root, rest, err := unflatten(fd.Nodes)
		if err != nil {
			return nil, fmt.Errorf("store: load %q: %w", fd.Name, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("store: load %q: %d trailing nodes", fd.Name, len(rest))
		}
		doc := &xmldoc.Document{Name: fd.Name, Root: root}
		xmldoc.Finalize(doc, c.dict)
		c.AddDocument(doc)
	}
	if err := c.Verify(); err != nil {
		return nil, err
	}
	return c, nil
}

func flatten(n *xmldoc.Node, out *[]flatNode) {
	*out = append(*out, flatNode{
		Tag:      n.Tag,
		Kind:     uint8(n.Kind),
		Text:     n.Text,
		Children: int32(len(n.Children)),
	})
	for _, ch := range n.Children {
		flatten(ch, out)
	}
}

func unflatten(nodes []flatNode) (*xmldoc.Node, []flatNode, error) {
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("truncated node stream")
	}
	f := nodes[0]
	n := &xmldoc.Node{Tag: f.Tag, Kind: xmldoc.Kind(f.Kind), Text: f.Text}
	rest := nodes[1:]
	for i := int32(0); i < f.Children; i++ {
		var child *xmldoc.Node
		var err error
		child, rest, err = unflatten(rest)
		if err != nil {
			return nil, nil, err
		}
		child.Parent = n
		n.Children = append(n.Children, child)
	}
	return n, rest, nil
}
