package store

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"seda/internal/pathdict"
	"seda/internal/snapcodec"
	"seda/internal/xmldoc"
)

// Two persistence formats live here:
//
//   - the v1 standalone gob stream (Save/Load) kept as a compatibility
//     shim for existing collection.gob files — it stores documents only
//     and derived state is rebuilt after Load;
//   - the versioned binary codec (Encode/Decode) used inside engine
//     snapshots, which additionally persists the per-path corpus
//     statistics so a loaded collection costs O(read), not O(rescan).
//
// Both flatten documents to pre-order node lists (parent pointers and
// Dewey ids are reconstructed on load), which keeps the formats free of
// cycles and independent of in-memory layout.

type flatNode struct {
	Tag      string
	Kind     uint8
	Text     string
	Children int32 // number of direct children following in pre-order
}

type flatDoc struct {
	Name  string
	Nodes []flatNode
}

type snapshot struct {
	Version int
	Docs    []flatDoc
}

const snapshotVersion = 1

// Save writes the collection to w. Indexes and graphs are derived data and
// are rebuilt after Load.
func (c *Collection) Save(w io.Writer) error {
	snap := snapshot{Version: snapshotVersion, Docs: make([]flatDoc, len(c.docs))}
	for i, d := range c.docs {
		fd := flatDoc{Name: d.Name}
		flatten(d.Root, &fd.Nodes)
		snap.Docs[i] = fd
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	return nil
}

// Load reads a collection previously written by Save.
func Load(r io.Reader) (*Collection, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("store: load: unsupported snapshot version %d", snap.Version)
	}
	c := NewCollection()
	for _, fd := range snap.Docs {
		root, rest, err := unflatten(fd.Nodes)
		if err != nil {
			return nil, fmt.Errorf("store: load %q: %w", fd.Name, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("store: load %q: %d trailing nodes", fd.Name, len(rest))
		}
		doc := &xmldoc.Document{Name: fd.Name, Root: root}
		xmldoc.Finalize(doc, c.dict)
		c.AddDocument(doc)
	}
	if err := c.Verify(); err != nil {
		return nil, err
	}
	return c, nil
}

func flatten(n *xmldoc.Node, out *[]flatNode) {
	*out = append(*out, flatNode{
		Tag:      n.Tag,
		Kind:     uint8(n.Kind),
		Text:     n.Text,
		Children: int32(len(n.Children)),
	})
	for _, ch := range n.Children {
		flatten(ch, out)
	}
}

// codecVersion is the snapshot-layer format version written by Encode.
const codecVersion = 1

// Encode appends the collection to w in its versioned binary form. The
// shared path dictionary is NOT included — it is its own snapshot layer,
// encoded before the collection — so node tags are written as interned tag
// ids and paths as interned path ids.
func (c *Collection) Encode(w *snapcodec.Writer) {
	w.Int(codecVersion)
	w.Int(len(c.docs))
	for _, d := range c.docs {
		w.String(d.Name)
		w.Int(d.CountNodes())
		d.Walk(func(n *xmldoc.Node) bool {
			w.Int(int(c.dict.LookupTag(n.Tag)))
			w.Byte(byte(n.Kind))
			w.String(n.Text)
			w.Int(len(n.Children))
			return true
		})
	}
	w.Int(c.nodeCount)
	encodePathCounts(w, c.pathDocFreq)
	encodePathCounts(w, c.pathOcc)
}

func encodePathCounts(w *snapcodec.Writer, m map[pathdict.PathID]int) {
	ids := make([]pathdict.PathID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Int(len(ids))
	for _, id := range ids {
		w.Int(int(id))
		w.Int(m[id])
	}
}

// Decode reads a collection previously written by Encode, resolving tag
// ids against dict (the already-decoded dictionary layer). Dewey ids and
// path ids are reassigned by xmldoc.Finalize — the dictionary already
// holds every path, so the assignment reproduces the encoder's ids — and
// the persisted statistics are installed directly instead of rescanned.
//
//seda:constructor
func Decode(r *snapcodec.Reader, dict *pathdict.Dict) (*Collection, error) {
	if v := r.Int(); r.Err() == nil && v != codecVersion {
		return nil, fmt.Errorf("store: unsupported codec version %d", v)
	}
	c := &Collection{
		dict:        dict,
		pathDocFreq: make(map[pathdict.PathID]int),
		pathOcc:     make(map[pathdict.PathID]int),
	}
	numDocs := r.Count(2)
	for i := 0; i < numDocs; i++ {
		name := r.String()
		numNodes := r.Count(4) // tag id + kind + text len + child count minimum
		root, rest, err := decodeNode(r, dict, numNodes, 0)
		if err != nil {
			return nil, fmt.Errorf("store: decode %q: %w", name, err)
		}
		if rest != 0 {
			return nil, fmt.Errorf("store: decode %q: %d trailing nodes", name, rest)
		}
		doc := &xmldoc.Document{ID: xmldoc.DocID(i), Name: name, Root: root}
		xmldoc.Finalize(doc, dict)
		c.docs = append(c.docs, doc)
	}
	c.nodeCount = r.Int()
	if err := decodePathCounts(r, dict, c.pathDocFreq); err != nil {
		return nil, err
	}
	if err := decodePathCounts(r, dict, c.pathOcc); err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("store: decode: %w", err)
	}
	if err := c.Verify(); err != nil {
		return nil, err
	}
	return c, nil
}

// maxDecodeDepth bounds tree nesting so a hostile stream of single-child
// chains cannot exhaust the goroutine stack through recursion.
const maxDecodeDepth = 10000

// decodeNode reads one node and its subtree; budget is the number of nodes
// the document claims to still contain, returned decremented so cycles of
// hostile child counts terminate.
func decodeNode(r *snapcodec.Reader, dict *pathdict.Dict, budget, depth int) (*xmldoc.Node, int, error) {
	if budget <= 0 {
		return nil, 0, fmt.Errorf("node count exceeded")
	}
	if depth > maxDecodeDepth {
		return nil, 0, fmt.Errorf("tree deeper than %d", maxDecodeDepth)
	}
	budget--
	tag := dict.Tag(pathdict.TagID(r.Int()))
	kind := xmldoc.Kind(r.Byte())
	text := r.String()
	children := r.Count(3)
	if err := r.Err(); err != nil {
		return nil, 0, err
	}
	if tag == "" {
		return nil, 0, fmt.Errorf("unknown tag id")
	}
	if kind != xmldoc.Element && kind != xmldoc.Attribute {
		return nil, 0, fmt.Errorf("invalid node kind %d", kind)
	}
	n := &xmldoc.Node{Tag: tag, Kind: kind, Text: text}
	for i := 0; i < children; i++ {
		child, rest, err := decodeNode(r, dict, budget, depth+1)
		if err != nil {
			return nil, 0, err
		}
		budget = rest
		child.Parent = n
		n.Children = append(n.Children, child)
	}
	return n, budget, nil
}

func decodePathCounts(r *snapcodec.Reader, dict *pathdict.Dict, m map[pathdict.PathID]int) error {
	n := r.Count(2)
	for i := 0; i < n; i++ {
		id := pathdict.PathID(r.Int())
		count := r.Int()
		if r.Err() != nil {
			break
		}
		if dict.Path(id) == "" {
			return fmt.Errorf("store: decode: unknown path id %d in statistics", id)
		}
		if _, dup := m[id]; dup {
			return fmt.Errorf("store: decode: duplicate path id %d in statistics", id)
		}
		m[id] = count
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("store: decode: %w", err)
	}
	return nil
}

func unflatten(nodes []flatNode) (*xmldoc.Node, []flatNode, error) {
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("truncated node stream")
	}
	f := nodes[0]
	n := &xmldoc.Node{Tag: f.Tag, Kind: xmldoc.Kind(f.Kind), Text: f.Text}
	rest := nodes[1:]
	for i := int32(0); i < f.Children; i++ {
		var child *xmldoc.Node
		var err error
		child, rest, err = unflatten(rest)
		if err != nil {
			return nil, nil, err
		}
		child.Parent = n
		n.Children = append(n.Children, child)
	}
	return n, rest, nil
}
