package store

import (
	"testing"

	"seda/internal/snapcodec"
	"seda/internal/xmldoc"
)

func TestTombstonesSet(t *testing.T) {
	var nilSet *Tombstones
	if nilSet.Len() != 0 || nilSet.Has(0) || nilSet.IDs() != nil || nilSet.AnyInRange(0, 100) {
		t.Error("nil set must behave as empty")
	}
	if NewTombstones(nil) != nil {
		t.Error("empty construction must yield the canonical nil set")
	}

	s := NewTombstones([]xmldoc.DocID{5, 1, 5, 130}) // duplicates collapse
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, id := range []xmldoc.DocID{1, 5, 130} {
		if !s.Has(id) {
			t.Errorf("Has(%d) = false", id)
		}
	}
	for _, id := range []xmldoc.DocID{0, 2, 129, 131, 100000, -1} {
		if s.Has(id) {
			t.Errorf("Has(%d) = true", id)
		}
	}
	if ids := s.IDs(); len(ids) != 3 || ids[0] != 1 || ids[1] != 5 || ids[2] != 130 {
		t.Errorf("IDs = %v, want [1 5 130]", ids)
	}
	if !s.AnyInRange(0, 2) || s.AnyInRange(2, 5) || !s.AnyInRange(100, 200) {
		t.Error("AnyInRange boundaries wrong")
	}

	// With is copy-on-write: the original set must not change.
	s2 := s.With([]xmldoc.DocID{2})
	if s.Len() != 3 || s.Has(2) {
		t.Error("With mutated the receiver")
	}
	if s2.Len() != 4 || !s2.Has(2) || !s2.Has(130) {
		t.Errorf("union wrong: %v", s2.IDs())
	}
	// Adding nothing new returns the receiver itself.
	if s.With([]xmldoc.DocID{5, 1}) != s {
		t.Error("no-op union should return the receiver")
	}
}

func TestTombstonesCodecRoundTrip(t *testing.T) {
	for _, ids := range [][]xmldoc.DocID{
		{0},
		{3},
		{0, 1, 2},
		{1, 5, 130, 131, 4095},
	} {
		s := NewTombstones(ids)
		var w snapcodec.Writer
		s.Encode(&w)
		got, err := DecodeTombstones(snapcodec.NewReader(w.Bytes()), 4096)
		if err != nil {
			t.Fatalf("ids %v: %v", ids, err)
		}
		if got.Len() != s.Len() {
			t.Fatalf("ids %v: round trip lost ids: %v", ids, got.IDs())
		}
		for _, id := range ids {
			if !got.Has(id) {
				t.Errorf("ids %v: lost %d", ids, id)
			}
		}
	}
	// The empty set encodes and decodes to nil.
	var w snapcodec.Writer
	(*Tombstones)(nil).Encode(&w)
	if got, err := DecodeTombstones(snapcodec.NewReader(w.Bytes()), 10); err != nil || got != nil {
		t.Errorf("empty round trip: set=%v err=%v", got, err)
	}
}

// TestTombstonesCodecHostileInputs sweeps the decoder with truncations,
// byte flips, and allocation bombs: every hostile payload must error (or
// decode to a valid set, for flips that happen to form one) without
// panicking or allocating off the hostile count.
func TestTombstonesCodecHostileInputs(t *testing.T) {
	s := NewTombstones([]xmldoc.DocID{1, 5, 130, 200})
	var w snapcodec.Writer
	s.Encode(&w)
	valid := w.Bytes()
	const numDocs = 256

	// Truncation sweep: every proper prefix must error.
	for cut := 0; cut < len(valid); cut++ {
		if _, err := DecodeTombstones(snapcodec.NewReader(valid[:cut]), numDocs); err == nil {
			t.Errorf("cut=%d: truncated payload accepted", cut)
		}
	}

	// Byte-flip sweep: no flip may panic, and anything accepted must be a
	// well-formed set within the collection.
	for pos := 0; pos < len(valid); pos++ {
		for _, mask := range []byte{0x01, 0x80, 0xFF} {
			bad := append([]byte{}, valid...)
			bad[pos] ^= mask
			got, err := DecodeTombstones(snapcodec.NewReader(bad), numDocs)
			if err != nil {
				continue
			}
			for _, id := range got.IDs() {
				if int(id) >= numDocs {
					t.Fatalf("pos=%d mask=%x: accepted out-of-range id %d", pos, mask, id)
				}
			}
		}
	}

	// Alloc bombs: a count beyond numDocs, and a count beyond the
	// remaining bytes, must both be rejected before allocation.
	var bomb snapcodec.Writer
	bomb.Int(tombstonesCodecVersion)
	bomb.Int(1 << 40)
	if _, err := DecodeTombstones(snapcodec.NewReader(bomb.Bytes()), 1<<50); err == nil {
		t.Error("hostile count beyond input accepted")
	}
	var bomb2 snapcodec.Writer
	bomb2.Int(tombstonesCodecVersion)
	bomb2.Int(100)
	if _, err := DecodeTombstones(snapcodec.NewReader(bomb2.Bytes()), 10); err == nil {
		t.Error("count beyond numDocs accepted")
	}

	// Wrong codec version.
	var wv snapcodec.Writer
	wv.Int(tombstonesCodecVersion + 1)
	wv.Int(0)
	if _, err := DecodeTombstones(snapcodec.NewReader(wv.Bytes()), 10); err == nil {
		t.Error("future codec version accepted")
	}

	// An id at or past numDocs (valid gap encoding, hostile bound).
	var oob snapcodec.Writer
	oob.Int(tombstonesCodecVersion)
	oob.Int(1)
	oob.Int(9) // id 9 in a 5-doc collection
	if _, err := DecodeTombstones(snapcodec.NewReader(oob.Bytes()), 5); err == nil {
		t.Error("out-of-range id accepted")
	}
}

func TestWithTombstonesValidation(t *testing.T) {
	c := NewCollection()
	addDocs(t, c, `<a><b>x</b></a>`, `<a><b>y</b></a>`)

	if _, err := c.WithTombstones(nil); err == nil {
		t.Error("empty mask accepted")
	}
	if _, err := c.WithTombstones([]xmldoc.DocID{5}); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := c.WithTombstones([]xmldoc.DocID{0, 0}); err == nil {
		t.Error("duplicate id accepted")
	}
	masked, err := c.WithTombstones([]xmldoc.DocID{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := masked.WithTombstones([]xmldoc.DocID{0}); err == nil {
		t.Error("re-masking an already-masked id accepted")
	}
	// The original collection is untouched (copy-on-write stats).
	if c.NumLive() != 2 || c.Tombstones().Len() != 0 {
		t.Error("WithTombstones mutated the receiver")
	}
	if masked.NumLive() != 1 || masked.NumDocs() != 2 {
		t.Errorf("masked: live=%d docs=%d, want 1/2", masked.NumLive(), masked.NumDocs())
	}

	// AttachTombstones (snapshot load path) refuses double-masking and
	// out-of-range sets, and does NOT touch statistics.
	if _, err := masked.AttachTombstones(NewTombstones([]xmldoc.DocID{1})); err == nil {
		t.Error("attach over existing tombstones accepted")
	}
	if _, err := c.AttachTombstones(NewTombstones([]xmldoc.DocID{7})); err == nil {
		t.Error("attach of out-of-range tombstone accepted")
	}
	attached, err := c.AttachTombstones(NewTombstones([]xmldoc.DocID{1}))
	if err != nil {
		t.Fatal(err)
	}
	if attached.NumNodes() != c.NumNodes() {
		t.Error("attach adjusted node statistics (the persisted stats are already masked)")
	}
}

func TestCompactedRenumbers(t *testing.T) {
	c := NewCollection()
	addDocs(t, c, `<a><b>x</b></a>`, `<a><b>y</b></a>`, `<a><b>z</b></a>`)
	masked, err := c.WithTombstones([]xmldoc.DocID{1})
	if err != nil {
		t.Fatal(err)
	}
	compacted := masked.Compacted()
	if compacted.NumDocs() != 2 || compacted.Tombstones().Len() != 0 {
		t.Fatalf("compacted: docs=%d tombstones=%d", compacted.NumDocs(), compacted.Tombstones().Len())
	}
	// Survivors keep their relative order under new contiguous ids, and
	// share node trees with the original (the shells are clones).
	if compacted.Doc(0).Name != "doc0" || compacted.Doc(1).Name != "doc2" {
		t.Errorf("order: %s, %s", compacted.Doc(0).Name, compacted.Doc(1).Name)
	}
	if compacted.Doc(1).Root != c.Doc(2).Root {
		t.Error("compaction copied node trees instead of sharing them")
	}
	if c.Doc(2).ID != 2 {
		t.Error("compaction renumbered the ORIGINAL collection's document")
	}
	// Statistics equal a from-scratch build over the survivors.
	scratch := NewCollection()
	addNamedDoc(t, scratch, "doc0", `<a><b>x</b></a>`)
	addNamedDoc(t, scratch, "doc2", `<a><b>z</b></a>`)
	if compacted.Stats() != scratch.Stats() {
		t.Errorf("stats: compacted %+v, scratch %+v", compacted.Stats(), scratch.Stats())
	}
}

func addNamedDoc(t *testing.T, c *Collection, name, xml string) {
	t.Helper()
	if _, err := c.AddXML(name, []byte(xml)); err != nil {
		t.Fatal(err)
	}
}
