package store

import (
	"bytes"
	"testing"

	"seda/internal/pathdict"
	"seda/internal/snapcodec"
)

// encodeBoth encodes the dictionary and collection the way an engine
// snapshot does: dictionary first, collection referring into it.
func encodeBoth(c *Collection) (dict, col []byte) {
	var wd, wc snapcodec.Writer
	c.Dict().Encode(&wd)
	c.Encode(&wc)
	return wd.Bytes(), wc.Bytes()
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	c := NewCollection()
	addDocs(t, c,
		`<country code="US"><name>United States</name><economy><GDP>10T</GDP><GDP>11T</GDP></economy></country>`,
		`<country><name>México</name></country>`,
		`<sea><name>Pacific &amp; North</name></sea>`,
	)
	dictBytes, colBytes := encodeBoth(c)

	dict, err := pathdict.Decode(snapcodec.NewReader(dictBytes))
	if err != nil {
		t.Fatalf("pathdict.Decode: %v", err)
	}
	got, err := Decode(snapcodec.NewReader(colBytes), dict)
	if err != nil {
		t.Fatalf("store.Decode: %v", err)
	}

	if got.Stats() != c.Stats() {
		t.Errorf("stats = %+v, want %+v", got.Stats(), c.Stats())
	}
	// Persisted statistics must match what a rescan would produce.
	for _, p := range c.Dict().AllPaths() {
		q := dict.LookupPath(c.Dict().Path(p))
		if got.PathDocFreq(q) != c.PathDocFreq(p) || got.PathOccurrences(q) != c.PathOccurrences(p) {
			t.Errorf("stats mismatch for %s", c.Dict().Path(p))
		}
	}
	// Node identity: same names, same content at the same refs.
	for _, d := range c.Docs() {
		gd := got.Doc(d.ID)
		if gd == nil || gd.Name != d.Name {
			t.Fatalf("doc %d missing or renamed", d.ID)
		}
		if gd.Root.Content() != d.Root.Content() {
			t.Errorf("doc %d content mismatch", d.ID)
		}
	}

	// Deterministic: encoding the decoded collection is byte-identical.
	dict2, col2 := encodeBoth(got)
	if !bytes.Equal(dictBytes, dict2) || !bytes.Equal(colBytes, col2) {
		t.Error("re-encoded bytes differ")
	}
}

func TestBinaryCodecHostileInputs(t *testing.T) {
	c := NewCollection()
	addDocs(t, c, `<a><b>x</b><b>y</b></a>`)
	dictBytes, colBytes := encodeBoth(c)
	dict, err := pathdict.Decode(snapcodec.NewReader(dictBytes))
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation must error, never panic.
	for cut := 0; cut < len(colBytes); cut++ {
		if _, err := Decode(snapcodec.NewReader(colBytes[:cut]), dict); err == nil {
			t.Errorf("cut=%d: expected error", cut)
		}
	}

	// A node count far beyond the input must be rejected up front.
	var w snapcodec.Writer
	w.Int(codecVersion)
	w.Int(1) // one document
	w.String("bomb")
	w.Int(1 << 30)
	if _, err := Decode(snapcodec.NewReader(w.Bytes()), dict); err == nil {
		t.Error("hostile node count should fail")
	}

	// A deep single-child chain must be rejected, not blow the stack.
	depth := maxDecodeDepth + 10
	var wd snapcodec.Writer
	wd.Int(codecVersion)
	wd.Int(1) // one document
	wd.String("chain")
	wd.Int(depth + 1)
	tagA := int(dict.LookupTag("a"))
	for i := 0; i <= depth; i++ {
		wd.Int(tagA)
		wd.Byte(0) // element
		wd.String("")
		if i < depth {
			wd.Int(1) // one child: the next node
		} else {
			wd.Int(0)
		}
	}
	if _, err := Decode(snapcodec.NewReader(wd.Bytes()), dict); err == nil {
		t.Error("over-deep chain should fail")
	}
}
