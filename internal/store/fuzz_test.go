package store

import (
	"bytes"
	"testing"

	"seda/internal/snapcodec"
	"seda/internal/xmldoc"
)

// FuzzTombstoneDecode throws arbitrary bytes at the SEDASNAP v4
// tombstone-section decoder. DecodeTombstones must never panic or
// allocate off a hostile count, and anything it accepts must be a
// well-formed set inside the collection that survives an
// encode/decode round trip unchanged.
func FuzzTombstoneDecode(f *testing.F) {
	seed := func(ids ...xmldoc.DocID) []byte {
		var w snapcodec.Writer
		NewTombstones(ids).Encode(&w)
		return w.Bytes()
	}
	f.Add(seed(), 10)
	f.Add(seed(0), 10)
	f.Add(seed(1, 5, 130, 200), 256)
	f.Add(seed(0, 1, 2, 3), 4)
	f.Add(seed(4095), 4096)
	f.Add(seed(1, 5, 130, 200)[:3], 256)               // truncation
	f.Add([]byte{2, 0}, 10)                            // future codec version
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, 10) // alloc bomb count
	f.Fuzz(func(t *testing.T, data []byte, numDocs int) {
		if numDocs < 0 || numDocs > 1<<20 {
			return
		}
		got, err := DecodeTombstones(snapcodec.NewReader(data), numDocs)
		if err != nil {
			return
		}
		for _, id := range got.IDs() {
			if int(id) < 0 || int(id) >= numDocs {
				t.Fatalf("accepted out-of-range id %d (numDocs %d)", id, numDocs)
			}
		}
		if got.Len() > numDocs {
			t.Fatalf("accepted %d tombstones for %d documents", got.Len(), numDocs)
		}
		var w snapcodec.Writer
		got.Encode(&w)
		again, err := DecodeTombstones(snapcodec.NewReader(w.Bytes()), numDocs)
		if err != nil {
			t.Fatalf("re-decoding re-encoded set: %v", err)
		}
		var w2 snapcodec.Writer
		again.Encode(&w2)
		if !bytes.Equal(w.Bytes(), w2.Bytes()) {
			t.Fatal("round trip changed the set")
		}
	})
}
