package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"seda/internal/dewey"
	"seda/internal/xmldoc"
)

func addDocs(t *testing.T, c *Collection, docs ...string) {
	t.Helper()
	for i, d := range docs {
		if _, err := c.AddXML(fmt.Sprintf("doc%d", i), []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAddAndStats(t *testing.T) {
	c := NewCollection()
	addDocs(t, c,
		`<country><name>United States</name><economy><GDP>10T</GDP></economy></country>`,
		`<country><name>Mexico</name><economy><GDP_ppp>1T</GDP_ppp></economy></country>`,
		`<sea><name>Pacific</name></sea>`,
	)
	st := c.Stats()
	if st.NumDocs != 3 {
		t.Errorf("NumDocs = %d", st.NumDocs)
	}
	// paths: /country /country/name /country/economy /country/economy/GDP
	// /country/economy/GDP_ppp /sea /sea/name = 7
	if st.NumPaths != 7 {
		t.Errorf("NumPaths = %d, want 7", st.NumPaths)
	}
	if st.NumNodes != 4+4+2 {
		t.Errorf("NumNodes = %d, want 10", st.NumNodes)
	}
	if err := c.Verify(); err != nil {
		t.Error(err)
	}
}

func TestPathFrequencies(t *testing.T) {
	c := NewCollection()
	addDocs(t, c,
		`<country><year>2002</year><year>2003</year></country>`,
		`<country><year>2004</year></country>`,
		`<country><name>x</name></country>`,
	)
	yearPath := c.Dict().LookupPath("/country/year")
	if got := c.PathDocFreq(yearPath); got != 2 {
		t.Errorf("PathDocFreq(/country/year) = %d, want 2", got)
	}
	if got := c.PathOccurrences(yearPath); got != 3 {
		t.Errorf("PathOccurrences(/country/year) = %d, want 3", got)
	}
	countryPath := c.Dict().LookupPath("/country")
	if got := c.PathDocFreq(countryPath); got != 3 {
		t.Errorf("PathDocFreq(/country) = %d, want 3", got)
	}
}

func TestNodeResolution(t *testing.T) {
	c := NewCollection()
	addDocs(t, c, `<a><b>one</b><c><d>two</d></c></a>`)
	ref := xmldoc.NodeRef{Doc: 0, Dewey: dewey.ID{1, 2, 1}}
	n := c.Node(ref)
	if n == nil || n.Tag != "d" {
		t.Fatalf("Node(1.2.1) = %+v", n)
	}
	if got := c.Content(ref); got != "two" {
		t.Errorf("Content = %q", got)
	}
	if got := c.Dict().Path(c.PathOf(ref)); got != "/a/c/d" {
		t.Errorf("PathOf = %q", got)
	}
	// Dangling refs.
	if c.Node(xmldoc.NodeRef{Doc: 9, Dewey: dewey.ID{1}}) != nil {
		t.Error("dangling doc should be nil")
	}
	if c.Content(xmldoc.NodeRef{Doc: 0, Dewey: dewey.ID{1, 9}}) != "" {
		t.Error("dangling node content should be empty")
	}
	// Ancestor access.
	anc := c.Ancestor(ref, 2)
	if anc == nil || anc.Tag != "c" {
		t.Errorf("Ancestor level 2 = %+v", anc)
	}
	if c.Ancestor(ref, 5) != nil || c.Ancestor(ref, 0) != nil {
		t.Error("out-of-range ancestor should be nil")
	}
}

func TestAddXMLErrors(t *testing.T) {
	c := NewCollection()
	if _, err := c.AddXML("bad", []byte("<a><b></a>")); err == nil {
		t.Error("malformed XML should error")
	}
	if c.NumDocs() != 0 {
		t.Error("failed add must not register a document")
	}
	if c.Doc(-1) != nil || c.Doc(0) != nil {
		t.Error("Doc out of range should be nil")
	}
}

func TestEachNodeCoversAll(t *testing.T) {
	c := NewCollection()
	addDocs(t, c, `<a><b>x</b></a>`, `<c/>`)
	count := 0
	c.EachNode(func(d *xmldoc.Document, n *xmldoc.Node) {
		count++
		if RefOf(d, n).Doc != d.ID {
			t.Error("RefOf doc mismatch")
		}
	})
	if count != c.NumNodes() {
		t.Errorf("EachNode visited %d, NumNodes %d", count, c.NumNodes())
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	c := NewCollection()
	addDocs(t, c,
		`<country code="us"><name>United States</name><economy><GDP>10T</GDP></economy></country>`,
		`<sea><name>Pacific Ocean</name><depth>10911</depth></sea>`,
	)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != c.NumDocs() || got.NumNodes() != c.NumNodes() {
		t.Errorf("roundtrip: docs %d/%d nodes %d/%d", got.NumDocs(), c.NumDocs(), got.NumNodes(), c.NumNodes())
	}
	if got.Stats().NumPaths != c.Stats().NumPaths {
		t.Errorf("roundtrip paths %d != %d", got.Stats().NumPaths, c.Stats().NumPaths)
	}
	// Same node content at same refs.
	ref := xmldoc.NodeRef{Doc: 0, Dewey: dewey.ID{1, 3, 1}}
	if got.Content(ref) != c.Content(ref) {
		t.Errorf("content mismatch at %v: %q vs %q", ref, got.Content(ref), c.Content(ref))
	}
	// Attribute preserved.
	if v, ok := got.Doc(0).Root.Attr("code"); !ok || v != "us" {
		t.Errorf("attribute lost in roundtrip: %q %v", v, ok)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("loading garbage should fail")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("loading empty stream should fail")
	}
}

// Property: save→load preserves per-path statistics for random collections.
func TestPropPersistencePreservesStats(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewCollection()
		nDocs := 1 + r.Intn(5)
		for i := 0; i < nDocs; i++ {
			doc := xmldoc.Build(fmt.Sprintf("d%d", i), randomTree(r, 0), c.Dict())
			c.AddDocument(doc)
		}
		var buf bytes.Buffer
		if c.Save(&buf) != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		if got.NumNodes() != c.NumNodes() || got.Stats().NumPaths != c.Stats().NumPaths {
			return false
		}
		for _, p := range c.Dict().AllPaths() {
			q := got.Dict().LookupPath(c.Dict().Path(p))
			if q == 0 {
				return false
			}
			if got.PathDocFreq(q) != c.PathDocFreq(p) || got.PathOccurrences(q) != c.PathOccurrences(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randomTree(r *rand.Rand, depth int) *xmldoc.Node {
	tags := []string{"a", "b", "c"}
	n := xmldoc.Elem(tags[r.Intn(len(tags))])
	if r.Intn(2) == 0 {
		n.Text = fmt.Sprintf("v%d", r.Intn(100))
	}
	if depth < 3 {
		for i := 0; i < r.Intn(3); i++ {
			n.Add(randomTree(r, depth+1))
		}
	}
	return n
}
