// Package store implements SEDA's storage component (paper §4, Figure 4).
//
// The paper stores XML in DB2 pureXML and keeps "several indexes to
// efficiently support these operations". This package provides the
// equivalent substrate: a document collection with Dewey-addressed node
// retrieval, per-path corpus statistics (document frequency and occurrence
// counts used by the context summary, §5), and binary persistence. The
// full-text indexes live in internal/index and are built over a Collection.
package store

import (
	"fmt"

	"seda/internal/pathdict"
	"seda/internal/xmldoc"
)

// Collection is an ordered set of XML documents sharing one path
// dictionary. Documents are added once (not concurrency-safe during
// loading); afterwards all read methods are safe for concurrent use and
// the collection is immutable — generations share document objects, so
// post-publish writes are sedalint diagnostics (genimmutable).
//
//seda:immutable
type Collection struct {
	dict *pathdict.Dict
	docs []*xmldoc.Document

	pathDocFreq map[pathdict.PathID]int // # LIVE documents containing the path
	pathOcc     map[pathdict.PathID]int // node occurrences of the path in live documents
	nodeCount   int                     // nodes across live documents

	// dead is the tombstone set masking deleted documents (nil when every
	// document is live — the common case). Masked documents keep their ids
	// and stay resolvable through Doc/Node (sessions pinned to older
	// generations still read them) but are skipped by EachNode, LiveDocs,
	// and the statistics above; see tombstones.go.
	dead *Tombstones
}

// NewCollection returns an empty collection with a fresh dictionary.
func NewCollection() *Collection {
	return &Collection{
		dict:        pathdict.New(),
		pathDocFreq: make(map[pathdict.PathID]int),
		pathOcc:     make(map[pathdict.PathID]int),
	}
}

// Dict returns the shared path dictionary.
func (c *Collection) Dict() *pathdict.Dict { return c.dict }

// AddXML parses data and adds the document under the given name.
func (c *Collection) AddXML(name string, data []byte) (xmldoc.DocID, error) {
	doc, err := xmldoc.Parse(data, c.dict)
	if err != nil {
		return 0, fmt.Errorf("store: adding %q: %w", name, err)
	}
	doc.Name = name
	return c.AddDocument(doc), nil
}

// AddDocument registers a document already finalized against the
// collection's dictionary (see xmldoc.Build) and returns its id.
//
//seda:constructor
func (c *Collection) AddDocument(doc *xmldoc.Document) xmldoc.DocID {
	id := xmldoc.DocID(len(c.docs))
	doc.ID = id
	c.docs = append(c.docs, doc)

	seen := make(map[pathdict.PathID]struct{})
	doc.Walk(func(n *xmldoc.Node) bool {
		c.nodeCount++
		c.pathOcc[n.Path]++
		if _, ok := seen[n.Path]; !ok {
			seen[n.Path] = struct{}{}
			c.pathDocFreq[n.Path]++
		}
		return true
	})
	return id
}

// Extend returns a new collection holding the receiver's documents plus
// docs, appended in order. The new collection shares the receiver's path
// dictionary (append-only, internally synchronized) and document objects,
// but carries its own copies of the per-path statistics, so the receiver
// is never modified: readers of the old generation keep a fully
// consistent view while the new one is assembled (the
// immutability-per-generation contract, see ARCHITECTURE.md).
//
// docs must already be finalized against the receiver's dictionary
// (xmldoc.Parse with c.Dict(), or xmldoc.Finalize); they are assigned the
// next document ids, exactly as if they had been added to a from-scratch
// collection after the existing documents.
//
//seda:constructor
func (c *Collection) Extend(docs []*xmldoc.Document) *Collection {
	nc := &Collection{
		dict:        c.dict,
		docs:        make([]*xmldoc.Document, len(c.docs), len(c.docs)+len(docs)),
		pathDocFreq: make(map[pathdict.PathID]int, len(c.pathDocFreq)),
		pathOcc:     make(map[pathdict.PathID]int, len(c.pathOcc)),
		nodeCount:   c.nodeCount,
		dead:        c.dead, // tombstones carry forward (immutable set)
	}
	copy(nc.docs, c.docs)
	for p, n := range c.pathDocFreq {
		nc.pathDocFreq[p] = n
	}
	for p, n := range c.pathOcc {
		nc.pathOcc[p] = n
	}
	for _, d := range docs {
		nc.AddDocument(d)
	}
	return nc
}

// NumDocs returns the size of the document-id space, INCLUDING masked
// (tombstoned) documents — shard ranges, codecs, and NodeRef resolution
// all work in id space. Use NumLive for the live corpus size.
func (c *Collection) NumDocs() int { return len(c.docs) }

// NumNodes returns the total number of nodes across live documents.
func (c *Collection) NumNodes() int { return c.nodeCount }

// Doc returns the document with the given id, or nil if out of range.
func (c *Collection) Doc(id xmldoc.DocID) *xmldoc.Document {
	if int(id) < 0 || int(id) >= len(c.docs) {
		return nil
	}
	return c.docs[id]
}

// Docs returns the documents in id order. The returned slice must not be
// modified.
func (c *Collection) Docs() []*xmldoc.Document { return c.docs }

// Node resolves a NodeRef to its node, or nil if the ref is dangling.
func (c *Collection) Node(ref xmldoc.NodeRef) *xmldoc.Node {
	doc := c.Doc(ref.Doc)
	if doc == nil {
		return nil
	}
	return doc.FindByDewey(ref.Dewey)
}

// Content returns content(n) for the referenced node, or "" for dangling
// refs. This is the store access the cube extraction step performs to fetch
// values (paper §7 Step 3).
func (c *Collection) Content(ref xmldoc.NodeRef) string {
	n := c.Node(ref)
	if n == nil {
		return ""
	}
	return n.Content()
}

// PathOf returns the path id of the referenced node, or InvalidPath.
func (c *Collection) PathOf(ref xmldoc.NodeRef) pathdict.PathID {
	n := c.Node(ref)
	if n == nil {
		return pathdict.InvalidPath
	}
	return n.Path
}

// PathDocFreq returns the number of documents containing at least one node
// with the given path. The paper's §1 example: "/country ... occurs in 1577
// out of 1600 documents".
func (c *Collection) PathDocFreq(p pathdict.PathID) int { return c.pathDocFreq[p] }

// PathOccurrences returns the total number of nodes with the given path
// across the collection (the count SEDA stores per path, §5).
func (c *Collection) PathOccurrences(p pathdict.PathID) int { return c.pathOcc[p] }

// Ancestor returns the ancestor node of ref at the given Dewey level, or
// nil.
func (c *Collection) Ancestor(ref xmldoc.NodeRef, level int) *xmldoc.Node {
	if level <= 0 || level > ref.Dewey.Level() {
		return nil
	}
	return c.Node(xmldoc.NodeRef{Doc: ref.Doc, Dewey: ref.Dewey.Prefix(level)})
}

// Stats summarizes the collection.
type Stats struct {
	NumDocs  int
	NumNodes int
	NumPaths int // distinct root-to-leaf paths (1984 for the paper's WFB)
	NumTags  int
}

// Stats returns collection-level statistics.
func (c *Collection) Stats() Stats {
	return Stats{
		NumDocs:  len(c.docs),
		NumNodes: c.nodeCount,
		NumPaths: c.dict.NumPaths(),
		NumTags:  c.dict.NumTags(),
	}
}

// EachNode visits every node of every LIVE document; used by index and
// graph builders, which must never see masked documents.
func (c *Collection) EachNode(fn func(doc *xmldoc.Document, n *xmldoc.Node)) {
	for _, d := range c.docs {
		if c.dead.Has(d.ID) {
			continue
		}
		d.Walk(func(n *xmldoc.Node) bool {
			fn(d, n)
			return true
		})
	}
}

// RefOf builds the NodeRef for a node within a document.
func RefOf(doc *xmldoc.Document, n *xmldoc.Node) xmldoc.NodeRef {
	return xmldoc.NodeRef{Doc: doc.ID, Dewey: n.Dewey}
}

// Verify checks internal consistency: every node's Dewey id resolves back to
// itself and every path id is renderable. It is used by tests and after
// Load.
func (c *Collection) Verify() error {
	for _, d := range c.docs {
		var fail error
		d.Walk(func(n *xmldoc.Node) bool {
			if got := d.FindByDewey(n.Dewey); got != n {
				fail = fmt.Errorf("store: doc %d node %s does not resolve to itself", d.ID, n.Dewey)
				return false
			}
			if c.dict.Path(n.Path) == "" {
				fail = fmt.Errorf("store: doc %d node %s has unrenderable path", d.ID, n.Dewey)
				return false
			}
			return true
		})
		if fail != nil {
			return fail
		}
	}
	return nil
}

// DeweyLevelOf is a small helper for packages that need the level of a ref
// without resolving the node.
func DeweyLevelOf(ref xmldoc.NodeRef) int { return ref.Dewey.Level() }
