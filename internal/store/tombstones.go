// Document tombstones: the deletion mask a generation carries (see
// ARCHITECTURE.md, "Document lifecycle"). Deleting or updating a document
// never touches the immutable shards or the stored documents — a new
// generation marks the document ids dead in a Tombstones set and every
// read path masks them out. Ids are never reused while the set is live;
// compaction (internal/core) rewrites the collection without the dead
// documents and renumbers the survivors contiguously.

package store

import (
	"fmt"
	"math/bits"
	"sort"

	"seda/internal/pathdict"
	"seda/internal/snapcodec"
	"seda/internal/xmldoc"
)

// Tombstones is an immutable set of masked (deleted) document ids. The
// zero of the type is a nil pointer: every method is nil-tolerant and a
// nil set is empty, so unmasked collections pay nothing.
//
//seda:immutable
type Tombstones struct {
	bits []uint64 // bitmap over document ids
	n    int      // number of set bits
}

// NewTombstones returns the set holding ids (duplicates collapse). A nil
// or empty ids yields nil — the canonical empty set.
//
//seda:constructor
func NewTombstones(ids []xmldoc.DocID) *Tombstones {
	var t *Tombstones
	return t.With(ids)
}

// Has reports whether id is masked. Nil-safe; out-of-range ids are never
// masked.
func (t *Tombstones) Has(id xmldoc.DocID) bool {
	if t == nil || id < 0 {
		return false
	}
	w := int(id) >> 6
	if w >= len(t.bits) {
		return false
	}
	return t.bits[w]&(1<<(uint(id)&63)) != 0
}

// Len returns the number of masked ids.
func (t *Tombstones) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// IDs returns the masked ids in ascending order (nil for the empty set).
func (t *Tombstones) IDs() []xmldoc.DocID {
	if t == nil || t.n == 0 {
		return nil
	}
	out := make([]xmldoc.DocID, 0, t.n)
	for w, word := range t.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, xmldoc.DocID(w*64+b))
			word &^= 1 << uint(b)
		}
	}
	return out
}

// AnyInRange reports whether any masked id falls in [lo, hi).
func (t *Tombstones) AnyInRange(lo, hi int) bool {
	if t == nil || t.n == 0 || hi <= lo {
		return false
	}
	for i := lo; i < hi; i++ {
		if t.Has(xmldoc.DocID(i)) {
			return true
		}
	}
	return false
}

// With returns the union of the receiver and ids; the receiver is never
// modified. Returns the receiver itself when ids adds nothing.
//
//seda:constructor
func (t *Tombstones) With(ids []xmldoc.DocID) *Tombstones {
	fresh := ids[:0:0]
	for _, id := range ids {
		if id >= 0 && !t.Has(id) {
			fresh = append(fresh, id)
		}
	}
	if len(fresh) == 0 {
		return t
	}
	max := fresh[0]
	for _, id := range fresh {
		if id > max {
			max = id
		}
	}
	words := int(max)/64 + 1
	nt := &Tombstones{bits: make([]uint64, words)}
	if t != nil {
		if len(t.bits) > words {
			nt.bits = make([]uint64, len(t.bits))
		}
		copy(nt.bits, t.bits)
		nt.n = t.n
	}
	for _, id := range fresh {
		w, b := int(id)>>6, uint(id)&63
		if nt.bits[w]&(1<<b) == 0 {
			nt.bits[w] |= 1 << b
			nt.n++
		}
	}
	return nt
}

// tombstonesCodecVersion versions the tombstone-section payload inside
// engine snapshots (SEDASNAP v4's "tombstones" section).
const tombstonesCodecVersion = 1

// Encode appends the set to w: version, count, then the ids as
// strictly-increasing gap deltas (first id verbatim, then id-prev-1).
func (t *Tombstones) Encode(w *snapcodec.Writer) {
	w.Int(tombstonesCodecVersion)
	ids := t.IDs()
	w.Int(len(ids))
	prev := xmldoc.DocID(-1)
	for _, id := range ids {
		w.Int(int(id - prev - 1))
		prev = id
	}
}

// DecodeTombstones reads a set written by Encode. Every id must be unique,
// ascending, and below numDocs; the count is bounded by the reader's
// remaining bytes (snapcodec.Reader.Count) and by numDocs, so hostile
// counts cannot drive allocation.
//
//seda:constructor
func DecodeTombstones(r *snapcodec.Reader, numDocs int) (*Tombstones, error) {
	if v := r.Int(); r.Err() == nil && v != tombstonesCodecVersion {
		return nil, fmt.Errorf("store: unsupported tombstones codec version %d", v)
	}
	n := r.Count(1)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("store: decode tombstones: %w", err)
	}
	if n > numDocs {
		return nil, fmt.Errorf("store: decode tombstones: %d tombstones for %d documents", n, numDocs)
	}
	ids := make([]xmldoc.DocID, 0, n)
	prev := -1
	for i := 0; i < n; i++ {
		gap := r.Int()
		if r.Err() != nil {
			break
		}
		id := prev + 1 + gap
		if gap < 0 || id >= numDocs {
			return nil, fmt.Errorf("store: decode tombstones: document id %d outside collection of %d", id, numDocs)
		}
		ids = append(ids, xmldoc.DocID(id))
		prev = id
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("store: decode tombstones: %w", err)
	}
	if len(ids) == 0 {
		return nil, nil
	}
	return NewTombstones(ids), nil
}

// WithTombstones returns a new collection masking ids on top of the
// receiver's existing tombstones. Documents and the dictionary are shared
// (the doc slice itself is reused — masking never moves a document); the
// per-path statistics and node count are copied and the newly dead
// documents' contributions subtracted, so PathDocFreq, PathOccurrences,
// and NumNodes describe the live corpus. Ids must be in range and not
// already masked.
//
//seda:constructor
func (c *Collection) WithTombstones(ids []xmldoc.DocID) (*Collection, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("store: no documents to mask")
	}
	seen := make(map[xmldoc.DocID]struct{}, len(ids))
	for _, id := range ids {
		if int(id) < 0 || int(id) >= len(c.docs) {
			return nil, fmt.Errorf("store: masking document %d outside collection of %d", id, len(c.docs))
		}
		if c.dead.Has(id) {
			return nil, fmt.Errorf("store: document %d is already masked", id)
		}
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("store: duplicate document %d in mask", id)
		}
		seen[id] = struct{}{}
	}
	nc := &Collection{
		dict:        c.dict,
		docs:        c.docs,
		pathDocFreq: make(map[pathdict.PathID]int, len(c.pathDocFreq)),
		pathOcc:     make(map[pathdict.PathID]int, len(c.pathOcc)),
		nodeCount:   c.nodeCount,
		dead:        c.dead.With(ids),
	}
	for p, n := range c.pathDocFreq {
		nc.pathDocFreq[p] = n
	}
	for p, n := range c.pathOcc {
		nc.pathOcc[p] = n
	}
	for _, id := range ids {
		docSeen := make(map[pathdict.PathID]struct{})
		c.docs[id].Walk(func(n *xmldoc.Node) bool {
			nc.nodeCount--
			if occ := nc.pathOcc[n.Path] - 1; occ > 0 {
				nc.pathOcc[n.Path] = occ
			} else {
				delete(nc.pathOcc, n.Path)
			}
			if _, ok := docSeen[n.Path]; !ok {
				docSeen[n.Path] = struct{}{}
				if df := nc.pathDocFreq[n.Path] - 1; df > 0 {
					nc.pathDocFreq[n.Path] = df
				} else {
					delete(nc.pathDocFreq, n.Path)
				}
			}
			return true
		})
	}
	return nc, nil
}

// AttachTombstones returns a collection identical to the receiver but
// carrying dead as its tombstone set WITHOUT adjusting statistics — the
// snapshot load path, where the persisted statistics were masked before
// the save and must not be subtracted twice. A nil dead returns the
// receiver.
//
//seda:constructor
func (c *Collection) AttachTombstones(dead *Tombstones) (*Collection, error) {
	if dead.Len() == 0 {
		return c, nil
	}
	if c.dead.Len() != 0 {
		return nil, fmt.Errorf("store: collection already carries tombstones")
	}
	for _, id := range dead.IDs() {
		if int(id) >= len(c.docs) {
			return nil, fmt.Errorf("store: tombstone %d outside collection of %d", id, len(c.docs))
		}
	}
	nc := *c
	nc.dead = dead
	return &nc, nil
}

// Tombstones returns the collection's tombstone set (nil when unmasked).
func (c *Collection) Tombstones() *Tombstones { return c.dead }

// Alive reports whether id names a live (unmasked, in-range) document.
func (c *Collection) Alive(id xmldoc.DocID) bool {
	return int(id) >= 0 && int(id) < len(c.docs) && !c.dead.Has(id)
}

// NumLive returns the number of live documents (NumDocs minus tombstones).
func (c *Collection) NumLive() int { return len(c.docs) - c.dead.Len() }

// LiveDocs returns the live documents in id order. Without tombstones it
// returns the collection's own slice; either way the result must not be
// modified.
func (c *Collection) LiveDocs() []*xmldoc.Document {
	if c.dead.Len() == 0 {
		return c.docs
	}
	out := make([]*xmldoc.Document, 0, c.NumLive())
	for _, d := range c.docs {
		if !c.dead.Has(d.ID) {
			out = append(out, d)
		}
	}
	return out
}

// LiveNames returns the names of the live documents, sorted. Lifecycle
// operations address documents by name (stable across compaction), so
// this is the deletable surface.
func (c *Collection) LiveNames() []string {
	names := make([]string, 0, c.NumLive())
	for _, d := range c.LiveDocs() {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return names
}

// LiveIDsByName returns the ids of live documents named name, ascending.
func (c *Collection) LiveIDsByName(name string) []xmldoc.DocID {
	var out []xmldoc.DocID
	for _, d := range c.docs {
		if d.Name == name && !c.dead.Has(d.ID) {
			out = append(out, d.ID)
		}
	}
	return out
}

// Compacted returns a new collection over the live documents only,
// renumbered contiguously in their original relative order. Document
// shells are cloned (ids change) but node trees and the path dictionary
// are shared — nodes are immutable, so both generations read the same
// trees. Statistics are recomputed by the AddDocument walks, which makes
// the result indistinguishable from a from-scratch collection over the
// surviving documents.
//
//seda:constructor
func (c *Collection) Compacted() *Collection {
	nc := &Collection{
		dict:        c.dict,
		docs:        make([]*xmldoc.Document, 0, c.NumLive()),
		pathDocFreq: make(map[pathdict.PathID]int, len(c.pathDocFreq)),
		pathOcc:     make(map[pathdict.PathID]int, len(c.pathOcc)),
	}
	for _, d := range c.docs {
		if c.dead.Has(d.ID) {
			continue
		}
		nc.AddDocument(&xmldoc.Document{Name: d.Name, Root: d.Root})
	}
	return nc
}
