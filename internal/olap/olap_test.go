package olap

import (
	"math"
	"strings"
	"testing"

	"seda/internal/rel"
)

// star mirrors the paper's Figure 3(c) fact table.
func star() *rel.Table {
	t := rel.NewTable("fact_percentage", "country", "year", "import_country", "percentage")
	rows := []struct {
		y, p string
		v    float64
	}{
		{"2004", "China", 12.5}, {"2004", "Mexico", 10.7},
		{"2005", "China", 13.8}, {"2005", "Mexico", 10.3},
		{"2006", "China", 15}, {"2006", "Canada", 16.9},
	}
	for _, r := range rows {
		t.Insert(rel.S("United States"), rel.S(r.y), rel.S(r.p), rel.N(r.v))
	}
	return t
}

func newCube(t *testing.T) *Cube {
	t.Helper()
	c, err := New(star(), []string{"country", "year", "import_country"}, "percentage")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	f := star()
	if _, err := New(nil, []string{"year"}, "percentage"); err == nil {
		t.Error("nil fact accepted")
	}
	if _, err := New(f, nil, "percentage"); err == nil {
		t.Error("no dims accepted")
	}
	if _, err := New(f, []string{"nope"}, "percentage"); err == nil {
		t.Error("unknown dim accepted")
	}
	if _, err := New(f, []string{"year"}, "nope"); err == nil {
		t.Error("unknown measure accepted")
	}
	c := newCube(t)
	if c.Measure() != "percentage" || len(c.Dims()) != 3 || c.Fact() == nil {
		t.Error("accessors broken")
	}
}

func TestAggregate(t *testing.T) {
	c := newCube(t)
	byYear, err := c.Aggregate([]string{"year"}, rel.Sum)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"2004": 23.2, "2005": 24.1, "2006": 31.9}
	if byYear.NumRows() != 3 {
		t.Fatalf("rows = %d", byYear.NumRows())
	}
	for _, r := range byYear.Rows {
		if math.Abs(r[1].Num-want[r[0].Str]) > 1e-9 {
			t.Errorf("SUM(%s) = %v, want %v", r[0].Str, r[1].Num, want[r[0].Str])
		}
	}
	// Grand total.
	total, err := c.Aggregate(nil, rel.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if total.NumRows() != 1 || math.Abs(total.Rows[0][0].Num-79.2) > 1e-9 {
		t.Errorf("grand total = %v", total)
	}
	if _, err := c.Aggregate([]string{"nope"}, rel.Sum); err == nil {
		t.Error("unknown group dim accepted")
	}
}

func TestLatticeConsistency(t *testing.T) {
	c := newCube(t)
	lat, err := c.Lattice(rel.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(lat) != 8 {
		t.Fatalf("lattice size = %d, want 2^3", len(lat))
	}
	grand := lat[""].Rows[0][0].Num
	// Every grouping's sums must add back to the grand total.
	for key, tab := range lat {
		if key == "" {
			continue
		}
		vi := len(tab.Cols) - 1
		s := 0.0
		for _, r := range tab.Rows {
			s += r[vi].Num
		}
		if math.Abs(s-grand) > 1e-9 {
			t.Errorf("grouping %q sums to %v, grand %v", key, s, grand)
		}
	}
}

func TestRollup(t *testing.T) {
	c := newCube(t)
	levels, err := c.Rollup(rel.Sum)
	if err != nil {
		t.Fatal(err)
	}
	// 3 dims: levels for k=3,2,1,0.
	if len(levels) != 4 {
		t.Fatalf("levels = %d", len(levels))
	}
	if levels[0].NumRows() != 6 || levels[3].NumRows() != 1 {
		t.Errorf("level shapes: %d ... %d", levels[0].NumRows(), levels[3].NumRows())
	}
	for i := 1; i < len(levels); i++ {
		if len(levels[i].Cols) >= len(levels[i-1].Cols) {
			t.Error("rollup must coarsen")
		}
	}
}

func TestSlice(t *testing.T) {
	c := newCube(t)
	s2005, err := c.Slice("year", "2005")
	if err != nil {
		t.Fatal(err)
	}
	if s2005.Fact().NumRows() != 2 {
		t.Fatalf("slice rows = %d", s2005.Fact().NumRows())
	}
	byPartner, err := s2005.Aggregate([]string{"import_country"}, rel.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if byPartner.NumRows() != 2 {
		t.Errorf("partners in 2005 = %d", byPartner.NumRows())
	}
	if _, err := c.Slice("nope", "x"); err == nil {
		t.Error("unknown slice dim accepted")
	}
	// Slicing away the only dimension keeps a degenerate axis.
	one, err := New(star(), []string{"year"}, "percentage")
	if err != nil {
		t.Fatal(err)
	}
	deg, err := one.Slice("year", "2004")
	if err != nil || deg.Fact().NumRows() != 2 {
		t.Errorf("degenerate slice: %v %v", deg, err)
	}
}

func TestDice(t *testing.T) {
	c := newCube(t)
	d, err := c.Dice(map[string][]string{
		"year":           {"2004", "2005"},
		"import_country": {"China"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Fact().NumRows() != 2 {
		t.Fatalf("diced rows = %d", d.Fact().NumRows())
	}
	total, _ := d.Aggregate(nil, rel.Sum)
	if math.Abs(total.Rows[0][0].Num-26.3) > 1e-9 {
		t.Errorf("diced sum = %v", total.Rows[0][0].Num)
	}
	if _, err := c.Dice(map[string][]string{"nope": {"x"}}); err == nil {
		t.Error("unknown dice dim accepted")
	}
}

func TestPivot(t *testing.T) {
	c := newCube(t)
	p, err := c.Pivot("import_country", "year", rel.Sum)
	if err != nil {
		t.Fatal(err)
	}
	// Canada has no 2004/2005 cells -> "." placeholders.
	if !strings.Contains(p, "Canada") || !strings.Contains(p, ".") {
		t.Errorf("pivot:\n%s", p)
	}
	if !strings.Contains(p, "15") {
		t.Errorf("pivot missing value:\n%s", p)
	}
	if _, err := c.Pivot("year", "year", rel.Sum); err == nil {
		t.Error("same-dim pivot accepted")
	}
	if _, err := c.Pivot("year", "nope", rel.Sum); err == nil {
		t.Error("unknown pivot dim accepted")
	}
}

func TestAggregateAvgMinMax(t *testing.T) {
	c := newCube(t)
	avg, err := c.Aggregate([]string{"import_country"}, rel.Avg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range avg.Rows {
		if r[0].Str == "China" && math.Abs(r[1].Num-(12.5+13.8+15)/3) > 1e-9 {
			t.Errorf("AVG(China) = %v", r[1].Num)
		}
	}
}
