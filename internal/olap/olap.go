// Package olap is the "off-the-shelf OLAP tool" of the paper's pipeline
// (§7: "we feed these tables into an OLAP-tool to compute the data cubes,
// one per fact table, and the desired aggregation functions for further
// analysis"). It computes data cubes over the star schemas produced by
// internal/cube: group-by aggregation over any dimension subset, the full
// cube lattice, rollup, slice and dice, and a pivot renderer.
package olap

import (
	"fmt"
	"sort"
	"strings"

	"seda/internal/rel"
)

// Cube is one analyzable cube: a fact table, the dimension columns, and a
// measure column.
type Cube struct {
	fact    *rel.Table
	dims    []string
	measure string
}

// New creates a cube, validating that all named columns exist in the fact
// table.
func New(fact *rel.Table, dims []string, measure string) (*Cube, error) {
	if fact == nil {
		return nil, fmt.Errorf("olap: nil fact table")
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("olap: a cube needs at least one dimension")
	}
	for _, d := range dims {
		if fact.ColIndex(d) < 0 {
			return nil, fmt.Errorf("olap: fact table %s has no dimension column %q", fact.Name, d)
		}
	}
	if fact.ColIndex(measure) < 0 {
		return nil, fmt.Errorf("olap: fact table %s has no measure column %q", fact.Name, measure)
	}
	return &Cube{fact: fact, dims: dims, measure: measure}, nil
}

// Dims returns the cube's dimension column names.
func (c *Cube) Dims() []string { return append([]string{}, c.dims...) }

// Measure returns the measure column name.
func (c *Cube) Measure() string { return c.measure }

// Fact returns the underlying fact table.
func (c *Cube) Fact() *rel.Table { return c.fact }

// Aggregate groups the fact table by the given dimension subset and applies
// fn over the measure. An empty groupBy computes the grand total.
func (c *Cube) Aggregate(groupBy []string, fn rel.AggFn) (*rel.Table, error) {
	for _, d := range groupBy {
		if !c.hasDim(d) {
			return nil, fmt.Errorf("olap: %q is not a dimension of this cube", d)
		}
	}
	return c.fact.GroupBy(groupBy, []rel.AggSpec{{Fn: fn, Col: c.measure}})
}

// Lattice computes the aggregate for every subset of the cube's dimensions
// (the CUBE operator). Keys of the result map are comma-joined dimension
// subsets (empty string = grand total).
func (c *Cube) Lattice(fn rel.AggFn) (map[string]*rel.Table, error) {
	n := len(c.dims)
	if n > 12 {
		return nil, fmt.Errorf("olap: %d dimensions is too many for a full lattice", n)
	}
	out := make(map[string]*rel.Table, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		var subset []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				subset = append(subset, c.dims[i])
			}
		}
		t, err := c.Aggregate(subset, fn)
		if err != nil {
			return nil, err
		}
		out[strings.Join(subset, ",")] = t
	}
	return out, nil
}

// Rollup aggregates at decreasing granularity along the dimension order:
// (d1..dk), (d1..dk-1), ..., (d1), (). The result has one table per level,
// finest first.
func (c *Cube) Rollup(fn rel.AggFn) ([]*rel.Table, error) {
	var out []*rel.Table
	for k := len(c.dims); k >= 0; k-- {
		t, err := c.Aggregate(c.dims[:k], fn)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Slice fixes one dimension to a value, returning a cube over the remaining
// dimensions.
func (c *Cube) Slice(dim, value string) (*Cube, error) {
	if !c.hasDim(dim) {
		return nil, fmt.Errorf("olap: %q is not a dimension of this cube", dim)
	}
	di := c.fact.ColIndex(dim)
	sub := c.fact.Select(func(r []rel.Value) bool { return r[di].Str == value })
	var rest []string
	for _, d := range c.dims {
		if d != dim {
			rest = append(rest, d)
		}
	}
	if len(rest) == 0 {
		rest = []string{dim} // degenerate: keep the sliced dim as the only axis
	}
	sub.Name = fmt.Sprintf("%s[%s=%s]", c.fact.Name, dim, value)
	return New(sub, rest, c.measure)
}

// Dice keeps only rows whose dimension values are in the given allow-lists
// (dimensions absent from the map are unconstrained).
func (c *Cube) Dice(allow map[string][]string) (*Cube, error) {
	idx := make(map[int]map[string]bool)
	for dim, vals := range allow {
		if !c.hasDim(dim) {
			return nil, fmt.Errorf("olap: %q is not a dimension of this cube", dim)
		}
		set := make(map[string]bool, len(vals))
		for _, v := range vals {
			set[v] = true
		}
		idx[c.fact.ColIndex(dim)] = set
	}
	sub := c.fact.Select(func(r []rel.Value) bool {
		for i, set := range idx {
			if !set[r[i].Str] {
				return false
			}
		}
		return true
	})
	sub.Name = c.fact.Name + "[diced]"
	return New(sub, c.dims, c.measure)
}

// Pivot renders a two-dimensional pivot table: rows by rowDim, columns by
// colDim, cells aggregated with fn.
func (c *Cube) Pivot(rowDim, colDim string, fn rel.AggFn) (string, error) {
	if !c.hasDim(rowDim) || !c.hasDim(colDim) || rowDim == colDim {
		return "", fmt.Errorf("olap: pivot needs two distinct cube dimensions")
	}
	agg, err := c.Aggregate([]string{rowDim, colDim}, fn)
	if err != nil {
		return "", err
	}
	rowSet := map[string]bool{}
	colSet := map[string]bool{}
	cells := map[[2]string]rel.Value{}
	for _, r := range agg.Rows {
		rk, ck := r[0].String(), r[1].String()
		rowSet[rk] = true
		colSet[ck] = true
		cells[[2]string{rk, ck}] = r[2]
	}
	rows := sortedSet(rowSet)
	cols := sortedSet(colSet)

	width := len(rowDim)
	for _, r := range rows {
		if len(r) > width {
			width = len(r)
		}
	}
	colW := make([]int, len(cols))
	for i, cl := range cols {
		colW[i] = len(cl)
		for _, r := range rows {
			if v, ok := cells[[2]string{r, cl}]; ok && len(v.String()) > colW[i] {
				colW[i] = len(v.String())
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) by %s x %s\n", fn, c.measure, rowDim, colDim)
	fmt.Fprintf(&b, "%-*s", width, rowDim)
	for i, cl := range cols {
		fmt.Fprintf(&b, "  %*s", colW[i], cl)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s", width, r)
		for i, cl := range cols {
			if v, ok := cells[[2]string{r, cl}]; ok {
				fmt.Fprintf(&b, "  %*s", colW[i], v.String())
			} else {
				fmt.Fprintf(&b, "  %*s", colW[i], ".")
			}
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func (c *Cube) hasDim(d string) bool {
	for _, x := range c.dims {
		if x == d {
			return true
		}
	}
	return false
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
