package pathdict

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestInternAndLookup(t *testing.T) {
	d := New()
	p1, err := d.InternPath("/country/economy/GDP")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.InternPath("/country/economy/GDP")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("interning the same path twice: %d vs %d", p1, p2)
	}
	if got := d.LookupPath("/country/economy/GDP"); got != p1 {
		t.Errorf("LookupPath = %d, want %d", got, p1)
	}
	if got := d.Path(p1); got != "/country/economy/GDP" {
		t.Errorf("Path = %q", got)
	}
	if got := d.LookupPath("/country/economy/GDP_ppp"); got != InvalidPath {
		t.Errorf("unknown path should be invalid, got %d", got)
	}
	if d.NumPaths() != 3 { // /country, /country/economy, /country/economy/GDP
		t.Errorf("NumPaths = %d, want 3", d.NumPaths())
	}
}

func TestMalformedPaths(t *testing.T) {
	d := New()
	for _, bad := range []string{"", "country", "/a//b", "/", "/a/"} {
		if _, err := d.InternPath(bad); err == nil {
			t.Errorf("InternPath(%q): want error", bad)
		}
		if got := d.LookupPath(bad); got != InvalidPath {
			t.Errorf("LookupPath(%q) = %d, want invalid", bad, got)
		}
	}
}

func TestParentLeafDepth(t *testing.T) {
	d := New()
	p, _ := d.InternPath("/country/economy/import_partners/item/percentage")
	if d.Depth(p) != 5 {
		t.Errorf("Depth = %d", d.Depth(p))
	}
	if d.LeafName(p) != "percentage" {
		t.Errorf("LeafName = %q", d.LeafName(p))
	}
	par := d.Parent(p)
	if d.Path(par) != "/country/economy/import_partners/item" {
		t.Errorf("Parent path = %q", d.Path(par))
	}
	top := d.LookupPath("/country")
	if d.Parent(top) != InvalidPath {
		t.Error("depth-1 path parent should be invalid")
	}
	if d.Depth(InvalidPath) != 0 || d.LeafName(InvalidPath) != "" {
		t.Error("invalid path should have zero depth and empty leaf")
	}
}

func TestPrefixAndCommonPrefix(t *testing.T) {
	d := New()
	a, _ := d.InternPath("/country/economy")
	b, _ := d.InternPath("/country/economy/import_partners/item/percentage")
	c, _ := d.InternPath("/country/economy/export_partners/item/percentage")
	g, _ := d.InternPath("/country/geography")
	other, _ := d.InternPath("/sea/name")

	if !d.IsPrefixOf(a, b) {
		t.Error("economy should prefix percentage path")
	}
	if d.IsPrefixOf(b, a) {
		t.Error("longer path cannot prefix shorter")
	}
	if !d.IsPrefixOf(a, a) {
		t.Error("prefix is reflexive")
	}
	if !d.IsPrefixOf(InvalidPath, a) {
		t.Error("virtual root prefixes everything")
	}

	if got := d.CommonPrefix(b, c); got != a {
		t.Errorf("CommonPrefix(import,export) = %q, want %q", d.Path(got), d.Path(a))
	}
	cn := d.LookupPath("/country")
	if got := d.CommonPrefix(b, g); got != cn {
		t.Errorf("CommonPrefix = %q, want /country", d.Path(got))
	}
	if got := d.CommonPrefix(b, other); got != InvalidPath {
		t.Errorf("CommonPrefix of disjoint roots = %q, want invalid", d.Path(got))
	}
}

func TestAncestorAtDepthAndSteps(t *testing.T) {
	d := New()
	p, _ := d.InternPath("/a/b/c/d")
	if got := d.AncestorAtDepth(p, 2); d.Path(got) != "/a/b" {
		t.Errorf("AncestorAtDepth(2) = %q", d.Path(got))
	}
	if got := d.AncestorAtDepth(p, 4); got != p {
		t.Error("AncestorAtDepth(depth) should be self")
	}
	if got := d.AncestorAtDepth(p, 5); got != InvalidPath {
		t.Error("deeper than path should be invalid")
	}
	steps := d.Steps(p)
	want := []string{"a", "b", "c", "d"}
	if len(steps) != len(want) {
		t.Fatalf("Steps len = %d", len(steps))
	}
	for i, s := range steps {
		if d.Tag(s) != want[i] {
			t.Errorf("step %d = %q, want %q", i, d.Tag(s), want[i])
		}
	}
}

func TestTags(t *testing.T) {
	d := New()
	id := d.InternTag("country")
	if d.InternTag("country") != id {
		t.Error("tag interning not idempotent")
	}
	if d.Tag(id) != "country" {
		t.Errorf("Tag = %q", d.Tag(id))
	}
	if d.LookupTag("nope") != InvalidTag {
		t.Error("unknown tag should be invalid")
	}
	if d.Tag(InvalidTag) != "" {
		t.Error("invalid tag name should be empty")
	}
	if d.NumTags() != 1 {
		t.Errorf("NumTags = %d", d.NumTags())
	}
}

func TestAllPathsSorted(t *testing.T) {
	d := New()
	for _, p := range []string{"/z/y", "/a/b", "/a", "/m"} {
		if _, err := d.InternPath(p); err != nil {
			t.Fatal(err)
		}
	}
	all := d.AllPaths()
	for i := 1; i < len(all); i++ {
		if d.Path(all[i-1]) >= d.Path(all[i]) {
			t.Errorf("AllPaths not sorted: %q >= %q", d.Path(all[i-1]), d.Path(all[i]))
		}
	}
	if len(all) != 5 { // /z, /z/y, /a, /a/b, /m
		t.Errorf("AllPaths len = %d, want 5", len(all))
	}
}

// Property: interning then rendering is the identity on well-formed paths.
func TestPropInternRenderRoundtrip(t *testing.T) {
	d := New()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		depth := 1 + r.Intn(6)
		path := ""
		for i := 0; i < depth; i++ {
			path += fmt.Sprintf("/t%d", r.Intn(20))
		}
		id, err := d.InternPath(path)
		if err != nil {
			return false
		}
		return d.Path(id) == path && d.LookupPath(path) == id && d.Depth(id) == depth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: CommonPrefix is a prefix of both arguments and is the deepest
// such path.
func TestPropCommonPrefix(t *testing.T) {
	d := New()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() PathID {
			depth := 1 + r.Intn(5)
			path := ""
			for i := 0; i < depth; i++ {
				path += fmt.Sprintf("/t%d", r.Intn(4))
			}
			id, _ := d.InternPath(path)
			return id
		}
		a, b := mk(), mk()
		cp := d.CommonPrefix(a, b)
		if cp == InvalidPath {
			// Valid only if first steps differ.
			return d.Steps(a)[0] != d.Steps(b)[0]
		}
		if !d.IsPrefixOf(cp, a) || !d.IsPrefixOf(cp, b) {
			return false
		}
		// One step deeper on either branch must not prefix the other.
		da := d.AncestorAtDepth(a, d.Depth(cp)+1)
		if da != InvalidPath && d.IsPrefixOf(da, b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentIntern(t *testing.T) {
	d := New()
	var wg sync.WaitGroup
	const workers = 8
	ids := make([]PathID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p, err := d.InternPath(fmt.Sprintf("/root/branch%d/leaf%d", i%10, i%7))
				if err != nil {
					t.Error(err)
					return
				}
				ids[w] = p
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if ids[w] != ids[0] {
			t.Errorf("worker %d got different id for same path", w)
		}
	}
}
