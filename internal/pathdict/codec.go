package pathdict

import (
	"fmt"

	"seda/internal/snapcodec"
)

// Binary codec (engine snapshots). The dictionary is the first layer of a
// snapshot: every other layer refers to paths and tags by the integer ids
// interned here, so those ids must survive a save/load round trip exactly.
// The encoding therefore writes tags and path nodes in id order — the trie
// children maps and string cache are derived state, rebuilt on decode.

// codecVersion is the layer format version written by Encode.
const codecVersion = 1

// Encode appends the dictionary to w in its versioned binary form.
func (d *Dict) Encode(w *snapcodec.Writer) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	w.Int(codecVersion)
	w.Int(len(d.tagNames) - 1)
	for _, name := range d.tagNames[1:] {
		w.String(name)
	}
	w.Int(len(d.nodes) - 1)
	for _, n := range d.nodes[1:] {
		// parent is -1..len-1; shift by one to keep it unsigned.
		w.Int(int(n.parent) + 1)
		w.Int(int(n.tag))
	}
}

// Decode reads a dictionary previously written by Encode. Ids are
// preserved: the i-th interned tag/path of the encoder is the i-th of the
// decoded dictionary.
//
//seda:nolock: d is freshly constructed here and unshared until returned
func Decode(r *snapcodec.Reader) (*Dict, error) {
	if v := r.Int(); r.Err() == nil && v != codecVersion {
		return nil, fmt.Errorf("pathdict: unsupported codec version %d", v)
	}
	d := New()
	numTags := r.Count(1)
	for i := 0; i < numTags; i++ {
		name := r.String()
		if r.Err() != nil {
			break
		}
		if _, dup := d.tags[name]; dup {
			return nil, fmt.Errorf("pathdict: decode: duplicate tag %q", name)
		}
		d.tags[name] = TagID(len(d.tagNames))
		d.tagNames = append(d.tagNames, name)
	}
	numNodes := r.Count(2)
	for i := 0; i < numNodes; i++ {
		parent := PathID(r.Int() - 1)
		tag := TagID(r.Int())
		if r.Err() != nil {
			break
		}
		id := PathID(len(d.nodes))
		if parent < InvalidPath || parent >= id {
			return nil, fmt.Errorf("pathdict: decode: node %d has forward parent %d", id, parent)
		}
		if int(tag) <= 0 || int(tag) >= len(d.tagNames) {
			return nil, fmt.Errorf("pathdict: decode: node %d has unknown tag %d", id, tag)
		}
		m, ok := d.children[parent]
		if !ok {
			m = make(map[TagID]PathID)
			d.children[parent] = m
		}
		if _, dup := m[tag]; dup {
			return nil, fmt.Errorf("pathdict: decode: duplicate child %d under %d", tag, parent)
		}
		m[tag] = id
		d.nodes = append(d.nodes, pathNode{parent: parent, tag: tag, depth: d.nodes[parent].depth + 1})
		d.strCache = append(d.strCache, "")
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("pathdict: decode: %w", err)
	}
	return d, nil
}
