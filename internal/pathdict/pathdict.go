// Package pathdict interns root-to-leaf label paths and tag names so the
// rest of the system can reason about contexts (paper §3: context(n) is the
// root-to-node label path) using small integer ids instead of strings.
//
// A path is written in the paper's notation, e.g.
// "/country/economy/import_partners/item/percentage". Internally a path id
// refers to a node in a prefix trie, which makes parent/ancestor questions
// about paths O(depth) without string manipulation.
package pathdict

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// PathID identifies an interned path. The zero value is InvalidPath.
type PathID int32

// TagID identifies an interned tag (element or attribute name).
type TagID int32

// InvalidPath is returned for unknown paths.
const InvalidPath PathID = 0

// InvalidTag is returned for unknown tags.
const InvalidTag TagID = 0

type pathNode struct {
	parent PathID
	tag    TagID
	depth  int32 // number of steps from the virtual root; "/a/b" has depth 2
}

// Dict is a concurrency-safe dictionary of tags and paths. The zero value is
// not usable; call New.
type Dict struct {
	mu       sync.RWMutex
	tags     map[string]TagID            // guarded by mu
	tagNames []string                    // guarded by mu; index = TagID; [0] is a placeholder
	children map[PathID]map[TagID]PathID // guarded by mu
	nodes    []pathNode                  // guarded by mu; index = PathID; [0] is the virtual root (depth 0)
	strCache []string                    // guarded by mu; lazily filled full strings, index = PathID
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{
		tags:     make(map[string]TagID),
		tagNames: []string{""},
		children: make(map[PathID]map[TagID]PathID),
		nodes:    []pathNode{{parent: -1, tag: 0, depth: 0}},
		strCache: []string{""},
	}
}

// InternTag returns the id for tag, creating it if needed.
func (d *Dict) InternTag(tag string) TagID {
	d.mu.RLock()
	id, ok := d.tags[tag]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.tags[tag]; ok {
		return id
	}
	id = TagID(len(d.tagNames))
	d.tagNames = append(d.tagNames, tag)
	d.tags[tag] = id
	return id
}

// LookupTag returns the id for tag, or InvalidTag if it was never interned.
func (d *Dict) LookupTag(tag string) TagID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.tags[tag]
}

// Tag returns the name of an interned tag.
func (d *Dict) Tag(id TagID) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) <= 0 || int(id) >= len(d.tagNames) {
		return ""
	}
	return d.tagNames[id]
}

// Extend returns the id of the path formed by appending tag to parent,
// interning it if needed. parent == InvalidPath extends the virtual root,
// i.e. Extend(InvalidPath, "country") is the path "/country".
func (d *Dict) Extend(parent PathID, tag string) PathID {
	tid := d.InternTag(tag)
	d.mu.RLock()
	if m, ok := d.children[parent]; ok {
		if id, ok := m[tid]; ok {
			d.mu.RUnlock()
			return id
		}
	}
	d.mu.RUnlock()

	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.children[parent]
	if !ok {
		m = make(map[TagID]PathID)
		d.children[parent] = m
	}
	if id, ok := m[tid]; ok {
		return id
	}
	id := PathID(len(d.nodes))
	d.nodes = append(d.nodes, pathNode{parent: parent, tag: tid, depth: d.nodes[parent].depth + 1})
	d.strCache = append(d.strCache, "")
	m[tid] = id
	return id
}

// InternPath interns a full path written as "/a/b/c" and returns its id.
// It returns an error for malformed paths (empty, missing leading slash, or
// empty steps).
func (d *Dict) InternPath(path string) (PathID, error) {
	steps, err := splitPath(path)
	if err != nil {
		return InvalidPath, err
	}
	id := InvalidPath
	for _, s := range steps {
		id = d.Extend(id, s)
	}
	return id, nil
}

// LookupPath returns the id for a full path string, or InvalidPath if any
// step was never interned.
func (d *Dict) LookupPath(path string) PathID {
	steps, err := splitPath(path)
	if err != nil {
		return InvalidPath
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	id := InvalidPath
	for _, s := range steps {
		tid, ok := d.tags[s]
		if !ok {
			return InvalidPath
		}
		m, ok := d.children[id]
		if !ok {
			return InvalidPath
		}
		id, ok = m[tid]
		if !ok {
			return InvalidPath
		}
	}
	return id
}

// Path renders the full string form of id, e.g. "/country/economy/GDP".
func (d *Dict) Path(id PathID) string {
	if id == InvalidPath {
		return ""
	}
	d.mu.RLock()
	if int(id) >= len(d.nodes) {
		d.mu.RUnlock()
		return ""
	}
	if s := d.strCache[id]; s != "" {
		d.mu.RUnlock()
		return s
	}
	// Build bottom-up.
	var parts []string
	for cur := id; cur != InvalidPath; cur = d.nodes[cur].parent {
		parts = append(parts, d.tagNames[d.nodes[cur].tag])
	}
	d.mu.RUnlock()
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	s := "/" + strings.Join(parts, "/")
	d.mu.Lock()
	d.strCache[id] = s
	d.mu.Unlock()
	return s
}

// Parent returns the id of the path with the last step removed, or
// InvalidPath for depth-1 paths.
func (d *Dict) Parent(id PathID) PathID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) <= 0 || int(id) >= len(d.nodes) {
		return InvalidPath
	}
	return d.nodes[id].parent
}

// LeafTag returns the tag id of the last step of the path.
func (d *Dict) LeafTag(id PathID) TagID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) <= 0 || int(id) >= len(d.nodes) {
		return InvalidTag
	}
	return d.nodes[id].tag
}

// LeafName returns the name of the last step of the path ("percentage" for
// "/country/.../percentage").
func (d *Dict) LeafName(id PathID) string { return d.Tag(d.LeafTag(id)) }

// Depth returns the number of steps in the path; "/a/b" has depth 2.
func (d *Dict) Depth(id PathID) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) <= 0 || int(id) >= len(d.nodes) {
		return 0
	}
	return int(d.nodes[id].depth)
}

// IsPrefixOf reports whether path a is a (non-strict) ancestor of path b in
// the path trie, i.e. the string of a is a step-prefix of the string of b.
func (d *Dict) IsPrefixOf(a, b PathID) bool {
	if a == InvalidPath {
		return true
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(a) >= len(d.nodes) || int(b) >= len(d.nodes) || b == InvalidPath {
		return false
	}
	da, db := d.nodes[a].depth, d.nodes[b].depth
	for db > da {
		b = d.nodes[b].parent
		db--
	}
	return a == b
}

// CommonPrefix returns the deepest path that is a prefix of both a and b
// (their LCA in the path trie), or InvalidPath if they share no steps.
func (d *Dict) CommonPrefix(a, b PathID) PathID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(a) >= len(d.nodes) || int(b) >= len(d.nodes) {
		return InvalidPath
	}
	da, db := depthOfLocked(d, a), depthOfLocked(d, b)
	for da > db {
		a = d.nodes[a].parent
		da--
	}
	for db > da {
		b = d.nodes[b].parent
		db--
	}
	for a != b {
		a, b = d.nodes[a].parent, d.nodes[b].parent
	}
	if a < 0 {
		return InvalidPath
	}
	return a
}

// AncestorAtDepth returns the prefix of id with exactly depth steps, or
// InvalidPath if id is shallower than depth.
func (d *Dict) AncestorAtDepth(id PathID, depth int) PathID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) <= 0 || int(id) >= len(d.nodes) {
		return InvalidPath
	}
	cur := int(d.nodes[id].depth)
	if cur < depth {
		return InvalidPath
	}
	for cur > depth {
		id = d.nodes[id].parent
		cur--
	}
	return id
}

// Steps returns the tag ids along the path from the root, in order.
func (d *Dict) Steps(id PathID) []TagID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) <= 0 || int(id) >= len(d.nodes) {
		return nil
	}
	out := make([]TagID, d.nodes[id].depth)
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = d.nodes[id].tag
		id = d.nodes[id].parent
	}
	return out
}

// NumPaths returns the number of distinct interned paths (the paper reports
// 1984 distinct paths for World Factbook, §2).
func (d *Dict) NumPaths() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.nodes) - 1
}

// NumTags returns the number of distinct interned tags.
func (d *Dict) NumTags() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.tagNames) - 1
}

// AllPaths returns all interned path ids sorted by their string form.
func (d *Dict) AllPaths() []PathID {
	d.mu.RLock()
	n := len(d.nodes)
	d.mu.RUnlock()
	out := make([]PathID, 0, n-1)
	for i := 1; i < n; i++ {
		out = append(out, PathID(i))
	}
	sort.Slice(out, func(i, j int) bool { return d.Path(out[i]) < d.Path(out[j]) })
	return out
}

func depthOfLocked(d *Dict, id PathID) int32 {
	if id == InvalidPath {
		return 0
	}
	return d.nodes[id].depth
}

func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("pathdict: path %q must start with '/'", path)
	}
	steps := strings.Split(path[1:], "/")
	for _, s := range steps {
		if s == "" {
			return nil, fmt.Errorf("pathdict: path %q has an empty step", path)
		}
	}
	return steps, nil
}
