package pathdict

import (
	"bytes"
	"testing"

	"seda/internal/snapcodec"
)

func TestCodecRoundTrip(t *testing.T) {
	d := New()
	paths := []string{
		"/country",
		"/country/name",
		"/country/economy/GDP",
		"/country/economy/import_partners/item/trade_country",
		"/sea/name",
	}
	ids := make([]PathID, len(paths))
	for i, p := range paths {
		id, err := d.InternPath(p)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var w snapcodec.Writer
	d.Encode(&w)
	got, err := Decode(snapcodec.NewReader(w.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}

	if got.NumPaths() != d.NumPaths() || got.NumTags() != d.NumTags() {
		t.Fatalf("sizes: paths %d/%d tags %d/%d", got.NumPaths(), d.NumPaths(), got.NumTags(), d.NumTags())
	}
	for i, p := range paths {
		if got.Path(ids[i]) != p {
			t.Errorf("Path(%d) = %q, want %q", ids[i], got.Path(ids[i]), p)
		}
		if got.LookupPath(p) != ids[i] {
			t.Errorf("LookupPath(%q) = %d, want %d", p, got.LookupPath(p), ids[i])
		}
		if got.Depth(ids[i]) != d.Depth(ids[i]) || got.Parent(ids[i]) != d.Parent(ids[i]) {
			t.Errorf("structure mismatch for %q", p)
		}
	}

	// Deterministic: re-encoding the decoded dictionary is byte-identical.
	var w2 snapcodec.Writer
	got.Encode(&w2)
	if !bytes.Equal(w.Bytes(), w2.Bytes()) {
		t.Error("re-encoded bytes differ")
	}
}

func TestDecodeRejectsCorruptStructure(t *testing.T) {
	// A node whose tag id was never interned.
	var w snapcodec.Writer
	w.Int(codecVersion)
	w.Int(1) // one tag
	w.String("a")
	w.Int(1) // one node
	w.Int(0) // parent = root
	w.Int(9) // unknown tag id
	if _, err := Decode(snapcodec.NewReader(w.Bytes())); err == nil {
		t.Error("unknown tag id should fail")
	}

	// Unsupported layer version.
	var w2 snapcodec.Writer
	w2.Int(codecVersion + 7)
	if _, err := Decode(snapcodec.NewReader(w2.Bytes())); err == nil {
		t.Error("future codec version should fail")
	}
}
