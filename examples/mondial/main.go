// Mondial: exploring linked XML (the paper's Figure 1 data graph). The
// corpus interlinks countries, cities, provinces, seas and organizations
// with IDREF attributes; this example discovers those edges, runs a
// cross-document search ("which countries border the Pacific Ocean?"), and
// shows link-backed connections in the connection summary.
package main

import (
	"fmt"
	"log"

	"seda"
)

func main() {
	col := seda.Mondial(0.05)
	// MondialConfig tells link discovery which attributes carry ids and
	// references (bordering, country, members, insea).
	eng, err := seda.NewEngine(col, seda.MondialConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d docs, %d link edges, %d dataguides\n\n",
		col.NumDocs(), eng.Graph().NumEdges(), len(eng.Dataguides().Guides))

	// Cross-document question: pair the Pacific Ocean with country names.
	// The tuples connect through sea->country bordering edges (Definition
	// 4: results must be connected in the data graph).
	s, err := eng.NewSession(`(/sea/name, "Pacific Ocean") AND (/country/name, *)`)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := s.TopK(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d cross-document tuples:\n", len(rs))
	for _, r := range rs {
		fmt.Printf("  %-20q ~ %-20q (docs %d ~ %d, compactness %.2f)\n",
			col.Content(r.Nodes[0]), col.Content(r.Nodes[1]),
			r.Nodes[0].Doc, r.Nodes[1].Doc, r.Compactness)
	}

	// The connection summary names the relationship: a "sea" IDREF edge.
	conns, err := s.ConnectionSummary()
	if err != nil {
		log.Fatal(err)
	}
	dict := col.Dict()
	fmt.Println("\nproposed connections:")
	for _, cn := range conns {
		fmt.Printf("  t%d~t%d %s (support %d)\n", cn.TermA, cn.TermB, cn.Describe(dict), cn.Support)
	}

	// Dataguide view: every entity kind collapses to a few structural
	// variants.
	dg := eng.Dataguides()
	fmt.Printf("\ndataguides: %d for %d documents (reduction %.0fx)\n",
		len(dg.Guides), col.NumDocs(), dg.Stats().Reduction)
	for _, g := range dg.Guides[:min(5, len(dg.Guides))] {
		first := dict.Path(g.Paths()[0])
		fmt.Printf("  guide %2d: %3d paths, %4d docs (root %s)\n", g.ID, g.Size(), len(g.Docs), first)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
