// World Factbook: the paper's full running example (§1, Figure 3). Starting
// from Query 1 — (*, "United States") ∧ (trade_country, *) ∧ (percentage, *)
// — the program disambiguates contexts, chooses connections, materializes
// the complete result set, derives the star schema with the Figure 3(b)
// catalog, and runs OLAP aggregations including a year-by-partner pivot.
package main

import (
	"fmt"
	"log"

	"seda"
)

const (
	nameP = "/country/name"
	tcP   = "/country/economy/import_partners/item/trade_country"
	pcP   = "/country/economy/import_partners/item/percentage"
)

func main() {
	// The six annual releases at 10% scale (160 documents).
	col := seda.WorldFactbook(0.1)
	eng, err := seda.NewEngine(col, seda.Config{})
	if err != nil {
		log.Fatal(err)
	}
	st := col.Stats()
	fmt.Printf("corpus: %d docs, %d distinct paths, %d dataguides at 0.40\n\n",
		st.NumDocs, st.NumPaths, len(eng.Dataguides().Guides))

	// Figure 3(b): the known facts and dimensions.
	baseKey, _ := seda.ParseKey("(/country/name, /country/year)")
	tcKey, _ := seda.ParseKey("(/country/name, /country/year, .)")
	pcKey, _ := seda.ParseKey("(/country/name, /country/year, ../trade_country)")
	cat := eng.Catalog()
	check(cat.AddDimension("country", seda.ContextEntry{Context: nameP, Key: baseKey}))
	check(cat.AddDimension("year", seda.ContextEntry{Context: "/country/year", Key: baseKey}))
	check(cat.AddDimension("import-country", seda.ContextEntry{Context: tcP, Key: tcKey}))
	check(cat.AddFact("import-trade-percentage", seda.ContextEntry{Context: pcP, Key: pcKey}))
	check(cat.AddFact("GDP",
		seda.ContextEntry{Context: "/country/economy/GDP", Key: baseKey},
		seda.ContextEntry{Context: "/country/economy/GDP_ppp", Key: baseKey}))

	// Query 1.
	s, err := eng.NewSession(`(*, "United States") AND (trade_country, *) AND (percentage, *)`)
	check(err)
	_, err = s.TopK(10)
	check(err)

	// Context summary (§5): count the ways the terms combine.
	ctxs := s.ContextSummary()
	combos := 1
	for ti, b := range ctxs {
		fmt.Printf("term %d %s has %d context(s)\n", ti, b.Term, len(b.Entries))
		combos *= len(b.Entries)
	}
	fmt.Printf("=> %d ways of combining these nodes before refinement\n\n", combos)

	// The user picks the import interpretation.
	check(s.RefineContexts(0, nameP))
	check(s.RefineContexts(1, tcP))
	check(s.RefineContexts(2, pcP))
	_, err = s.TopK(20)
	check(err)

	// Connection summary (§6): same-item vs cross-item.
	conns, err := s.ConnectionSummary()
	check(err)
	dict := col.Dict()
	fmt.Println("proposed connections:")
	var pick []int
	for i, cn := range conns {
		fmt.Printf("  %d. t%d~t%d %s (support %d, false-positive %v)\n",
			i, cn.TermA, cn.TermB, cn.Describe(dict), cn.Support, cn.FalsePositive)
		jp := dict.Path(cn.JoinPath)
		if (cn.TermA == 1 && cn.TermB == 2 && jp == "/country/economy/import_partners/item") ||
			(cn.TermA == 0 && cn.TermB == 1 && jp == "/country") {
			pick = append(pick, i)
		}
	}
	check(s.ChooseConnections(pick...))

	// Complete results and the star schema (§7, Figure 3c).
	tuples, err := s.CompleteResults()
	check(err)
	fmt.Printf("\ncomplete result set R(q): %d tuples\n", len(tuples))
	star, err := s.BuildCube(seda.CubeOptions{})
	check(err)
	ft := star.FactTable("import-trade-percentage")
	fmt.Printf("fact table: %d rows, columns %v\n", ft.NumRows(), ft.Cols)
	for _, dt := range star.DimTables {
		fmt.Printf("dimension %-15s %3d members\n", dt.Name, dt.NumRows())
	}

	// OLAP (§7's final hand-off): SUM of import percentages by partner,
	// then the year x partner pivot.
	cube, err := eng.Analyze(star, "import-trade-percentage", []string{"name", "year", "trade_country"})
	check(err)
	byPartner, err := cube.Aggregate([]string{"trade_country"}, seda.Sum)
	check(err)
	fmt.Println()
	fmt.Println(byPartner.String())
	pivot, err := cube.Pivot("trade_country", "year", seda.Sum)
	check(err)
	fmt.Println(pivot)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
