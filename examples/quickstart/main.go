// Quickstart: load a handful of XML documents, search them with query
// terms, inspect the context summary, and read the top result — the
// smallest useful slice of the SEDA workflow.
package main

import (
	"fmt"
	"log"

	"seda"
)

var docs = []string{
	`<country><name>United States</name><year>2002</year>
	   <economy><GDP>10.082T</GDP></economy></country>`,
	`<country><name>Mexico</name><year>2003</year><economy><GDP>924.4B</GDP>
	   <import_partners>
	     <item><trade_country>United States</trade_country><percentage>70.6%</percentage></item>
	     <item><trade_country>Germany</trade_country><percentage>3.5%</percentage></item>
	   </import_partners></economy></country>`,
	`<country><name>Mexico</name><year>2005</year><economy><GDP_ppp>1.006T</GDP_ppp>
	   <export_partners>
	     <item><trade_country>United States</trade_country><percentage>15.3%</percentage></item>
	   </export_partners></economy></country>`,
}

func main() {
	// 1. Build a collection. In real use, seda.LoadXMLDir("./corpus") loads
	// files from disk.
	col := seda.NewCollection()
	for i, d := range docs {
		if _, err := col.AddXML(fmt.Sprintf("doc%d", i), []byte(d)); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Index it.
	eng, err := seda.NewEngine(col, seda.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Ask a keyword-style question: where does "United States" appear
	// next to a percentage?
	s, err := eng.NewSession(`(*, "United States") AND (percentage, *)`)
	if err != nil {
		log.Fatal(err)
	}
	results, err := s.TopK(5)
	if err != nil {
		log.Fatal(err)
	}
	dict := col.Dict()
	fmt.Printf("top results (%d):\n", len(results))
	for _, r := range results {
		fmt.Printf("  score %.3f:", r.Score)
		for i, n := range r.Nodes {
			fmt.Printf("  [%s = %q]", dict.Path(r.Paths[i]), col.Content(n))
		}
		fmt.Println()
	}

	// 4. The context summary explains the ambiguity: "United States" is a
	// country name, an import partner, and an export partner.
	fmt.Println("\ncontexts of \"United States\":")
	for _, e := range s.ContextSummary()[0].Entries {
		fmt.Printf("  %-55s in %d of %d docs\n", e.PathString, e.DocFreq, col.NumDocs())
	}
}
