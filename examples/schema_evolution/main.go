// Schema evolution: the paper's §7 heterogeneity story. The World Factbook
// schema renamed GDP to GDP_ppp in 2005; SEDA handles this by defining one
// fact over a ContextList with both paths. This example builds that fact,
// extracts it across all six releases, defines a *new* fact from a query
// column (with automatic key verification), and uses GORDIAN-style key
// discovery to find the key automatically.
package main

import (
	"fmt"
	"log"

	"seda"
)

func main() {
	col := seda.WorldFactbook(0.1)
	eng, err := seda.NewEngine(col, seda.Config{})
	check(err)

	dict := col.Dict()
	gdpOld := dict.LookupPath("/country/economy/GDP")
	gdpNew := dict.LookupPath("/country/economy/GDP_ppp")
	fmt.Printf("GDP:     in %d documents (releases before 2005)\n", col.PathDocFreq(gdpOld))
	fmt.Printf("GDP_ppp: in %d documents (2005 and later)\n\n", col.PathDocFreq(gdpNew))

	// One fact, two contexts — the nested ContextList of §7.
	baseKey, _ := seda.ParseKey("(/country/name, /country/year)")
	check(eng.Catalog().AddDimension("year", seda.ContextEntry{Context: "/country/year", Key: baseKey}))
	check(eng.Catalog().AddFact("GDP",
		seda.ContextEntry{Context: "/country/economy/GDP", Key: baseKey},
		seda.ContextEntry{Context: "/country/economy/GDP_ppp", Key: baseKey},
	))

	// Ask for countries and extract GDP across the rename.
	s, err := eng.NewSession(`(/country/name, *)`)
	check(err)
	star, err := s.BuildCube(seda.CubeOptions{AddFacts: []string{"GDP"}})
	check(err)
	gt := star.FactTable("GDP")
	fmt.Printf("GDP fact table spans the rename: %d rows\n", gt.NumRows())
	byYear, err := gt.GroupBy([]string{"year"}, nil)
	check(err)
	fmt.Printf("years covered: %d (2002-2007)\n\n", byYear.NumRows())

	// Define a brand-new fact from a result column. The key must verify:
	// a bad key is rejected with the colliding rows named.
	s2, err := eng.NewSession(`(percentage, *)`)
	check(err)
	_, err = s2.BuildCube(seda.CubeOptions{Define: []seda.NewDef{{
		Name: "pct-bad", Column: 0, IsFact: true, Key: "(/country/name)",
	}}})
	fmt.Printf("bad key rejected: %v\n\n", err)

	// GORDIAN-style discovery proposes a valid key instead (§8 future
	// work, implemented here). The key is discovered for the *import*
	// percentage context, so the fact is defined on that context too —
	// (percentage, *) would also match export percentages, where the same
	// (country, trade partner) pair can legitimately reappear.
	k, ok := seda.DiscoverKey(col, "/country/economy/import_partners/item/percentage")
	if !ok {
		log.Fatal("no key discovered")
	}
	fmt.Printf("discovered key for percentage: %s\n", k)

	s3, err := eng.NewSession(`(/country/economy/import_partners/item/percentage, *)`)
	check(err)
	star3, err := s3.BuildCube(seda.CubeOptions{Define: []seda.NewDef{{
		Name: "any-percentage", Column: 0, IsFact: true, Key: k.String(),
	}}})
	check(err)
	ft := star3.FactTable("any-percentage")
	fmt.Printf("user-defined fact extracted: %d rows, columns %v\n", ft.NumRows(), ft.Cols)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
