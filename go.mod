module seda

go 1.24
