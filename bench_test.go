package seda

// Benchmark harness: one benchmark per paper artifact (see DESIGN.md's
// experiment index). Corpora are scaled down so iterations stay tractable;
// cmd/sedabench runs the full-scale, single-shot versions that print the
// paper's tables. Reported custom metrics (guides, tuples, rows) let the
// shape of each result be read straight off the benchmark output.

import (
	"fmt"
	"testing"

	"seda/internal/dataguide"
	"seda/internal/fulltext"
	"seda/internal/index"
	"seda/internal/keys"
	"seda/internal/rel"
	"seda/internal/summary"
	"seda/internal/topk"
	"seda/internal/twig"
)

// benchScale keeps per-iteration corpus builds affordable.
const benchScale = 0.05

// --- E1: Table 1 — dataguide construction per corpus ---

func benchTable1(b *testing.B, gen func(float64) *Collection, scale float64) {
	col := gen(scale)
	b.ResetTimer()
	var guides int
	for i := 0; i < b.N; i++ {
		dg, err := dataguide.Build(col, 0.40)
		if err != nil {
			b.Fatal(err)
		}
		guides = len(dg.Guides)
	}
	b.ReportMetric(float64(col.NumDocs()), "docs")
	b.ReportMetric(float64(guides), "guides")
}

func BenchmarkTable1_GoogleBase(b *testing.B)    { benchTable1(b, GoogleBase, 0.1) }
func BenchmarkTable1_Mondial(b *testing.B)       { benchTable1(b, Mondial, 0.1) }
func BenchmarkTable1_RecipeML(b *testing.B)      { benchTable1(b, RecipeML, 0.1) }
func BenchmarkTable1_WorldFactbook(b *testing.B) { benchTable1(b, WorldFactbook, 0.1) }

// --- E2: Figure 3 — Query 1 end-to-end cube construction ---

func BenchmarkFigure3Cube(b *testing.B) {
	eng := wfbEngine(b, benchScale)
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		s := sessionQuery1Refined(b, eng)
		star, err := s.BuildCube(CubeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		rows = star.FactTable("import-trade-percentage").NumRows()
	}
	b.ReportMetric(float64(rows), "fact_rows")
}

// sessionQuery1Refined prepares the refined Query 1 session with chosen
// connections.
func sessionQuery1Refined(b testing.TB, eng *Engine) *Session {
	s, err := eng.NewSession(query1)
	if err != nil {
		b.Fatal(err)
	}
	for i, p := range []string{nameP, tcP, pcP} {
		if err := s.RefineContexts(i, p); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := s.TopK(20); err != nil {
		b.Fatal(err)
	}
	conns, err := s.ConnectionSummary()
	if err != nil {
		b.Fatal(err)
	}
	dict := eng.Collection().Dict()
	var pick []int
	for i, cn := range conns {
		if cn.Kind != summary.Tree {
			continue
		}
		jp := dict.Path(cn.JoinPath)
		if (cn.TermA == 1 && cn.TermB == 2 && jp == itP) ||
			(cn.TermA == 0 && cn.TermB == 1 && jp == "/country") {
			pick = append(pick, i)
		}
	}
	if err := s.ChooseConnections(pick...); err != nil {
		b.Fatal(err)
	}
	return s
}

// --- E3: Figure 6 — control-flow phase latencies ---

func BenchmarkControlFlow_TopK(b *testing.B) {
	eng := wfbEngine(b, benchScale)
	s, err := eng.NewSession(query1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TopK(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkControlFlow_ContextSummary(b *testing.B) {
	eng := wfbEngine(b, benchScale)
	s, err := eng.NewSession(query1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ContextSummary()
	}
}

func BenchmarkControlFlow_ConnectionSummary(b *testing.B) {
	eng := wfbEngine(b, benchScale)
	s, err := eng.NewSession(query1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.TopK(10); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ConnectionSummary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkControlFlow_CompleteResults(b *testing.B) {
	eng := wfbEngine(b, benchScale)
	b.ResetTimer()
	var tuples int
	for i := 0; i < b.N; i++ {
		s := sessionQuery1Refined(b, eng)
		ts, err := s.CompleteResults()
		if err != nil {
			b.Fatal(err)
		}
		tuples = len(ts)
	}
	b.ReportMetric(float64(tuples), "tuples")
}

// --- E4: §1 in-text corpus statistics ---

func BenchmarkInTextStats(b *testing.B) {
	col := WorldFactbook(0.1)
	ix := index.Build(col)
	b.ResetTimer()
	var usPaths int
	for i := 0; i < b.N; i++ {
		usPaths = len(ix.PathsForExpr(fulltext.MustParseQuery(`"United States"`)))
	}
	b.ReportMetric(float64(usPaths), "us_paths")
	b.ReportMetric(float64(col.Stats().NumPaths), "distinct_paths")
}

// --- E5: §6.1 threshold sweep ---

func BenchmarkDataguideSweep(b *testing.B) {
	col := WorldFactbook(0.1)
	for _, th := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		b.Run(fmt.Sprintf("threshold=%.1f", th), func(b *testing.B) {
			var guides int
			for i := 0; i < b.N; i++ {
				dg, err := dataguide.Build(col, th)
				if err != nil {
					b.Fatal(err)
				}
				guides = len(dg.Guides)
			}
			b.ReportMetric(float64(guides), "guides")
		})
	}
}

// --- A1: ranking ablation — compactness vs content-only ---

func BenchmarkAblationRanking(b *testing.B) {
	eng := wfbEngine(b, benchScale)
	q, err := ParseQuery(`(trade_country, *) AND (percentage, *)`)
	if err != nil {
		b.Fatal(err)
	}
	searcher := topk.New(eng.Index(), eng.Graph())
	for _, contentOnly := range []bool{false, true} {
		name := "compactness"
		if contentOnly {
			name = "content_only"
		}
		b.Run(name, func(b *testing.B) {
			var siblings int
			for i := 0; i < b.N; i++ {
				rs, err := searcher.Search(q, topk.Options{K: 10, ContentOnly: contentOnly})
				if err != nil {
					b.Fatal(err)
				}
				// Count top results whose pair is sibling-joined (the
				// intended same-item interpretation).
				siblings = 0
				for _, r := range rs {
					if r.Nodes[0].Doc == r.Nodes[1].Doc &&
						len(r.Nodes[0].Dewey) == len(r.Nodes[1].Dewey) &&
						r.Nodes[0].Dewey.Prefix(len(r.Nodes[0].Dewey)-1).String() == r.Nodes[1].Dewey.Prefix(len(r.Nodes[1].Dewey)-1).String() {
						siblings++
					}
				}
			}
			b.ReportMetric(float64(siblings), "sibling_pairs_in_top10")
		})
	}
}

// --- A5: top-k strategy — document-at-a-time TA vs classic rank join ---

func BenchmarkAblationTopKStrategy(b *testing.B) {
	eng := wfbEngine(b, benchScale)
	searcher := topk.New(eng.Index(), eng.Graph())
	q, err := ParseQuery(`(trade_country, *) AND (percentage, *)`)
	if err != nil {
		b.Fatal(err)
	}
	opts := topk.Options{K: 10, DisableCrossDoc: true}
	b.Run("doc_at_a_time", func(b *testing.B) {
		var st topk.Stats
		for i := 0; i < b.N; i++ {
			_, s, err := searcher.SearchStats(q, opts)
			if err != nil {
				b.Fatal(err)
			}
			st = s
		}
		b.ReportMetric(float64(st.UnitsScanned), "units_scanned")
		b.ReportMetric(float64(st.TuplesScored), "tuples_scored")
	})
	b.Run("rank_join", func(b *testing.B) {
		var st topk.Stats
		for i := 0; i < b.N; i++ {
			_, s, err := searcher.SearchRankJoin(q, opts)
			if err != nil {
				b.Fatal(err)
			}
			st = s
		}
		b.ReportMetric(float64(st.UnitsScanned), "stream_pulls")
		b.ReportMetric(float64(st.TuplesScored), "tuples_scored")
	})
}

// --- A2: join ablation — holistic twig join vs naive nested loop ---

func BenchmarkAblationJoin(b *testing.B) {
	eng := wfbEngine(b, benchScale)
	dict := eng.Collection().Dict()
	tm := func(ctx string) Term {
		t, err := ParseQuery(fmt.Sprintf("(%s, *)", ctx))
		if err != nil {
			b.Fatal(err)
		}
		return t.Terms[0]
	}
	plan := twig.Plan{
		Terms: []Term{tm(tcP), tm(pcP)},
		Connections: []summary.Connection{{
			TermA: 0, TermB: 1,
			PathA: dict.LookupPath(tcP), PathB: dict.LookupPath(pcP),
			Kind: summary.Tree, JoinPath: dict.LookupPath(itP),
		}},
	}
	ev := twig.New(eng.Index(), eng.Graph())
	b.Run("twig", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			ts, err := ev.ComputeAll(plan)
			if err != nil {
				b.Fatal(err)
			}
			n = len(ts)
		}
		b.ReportMetric(float64(n), "tuples")
	})
	b.Run("naive", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			ts, err := ev.ComputeNaive(plan)
			if err != nil {
				b.Fatal(err)
			}
			n = len(ts)
		}
		b.ReportMetric(float64(n), "tuples")
	})
}

// --- A3: connection cache ablation ---

func BenchmarkAblationConnCache(b *testing.B) {
	eng := wfbEngine(b, benchScale)
	s, err := eng.NewSession(query1)
	if err != nil {
		b.Fatal(err)
	}
	rs, err := s.TopK(10)
	if err != nil {
		b.Fatal(err)
	}
	for _, noCache := range []bool{false, true} {
		name := "cached"
		if noCache {
			name = "no_cache"
		}
		b.Run(name, func(b *testing.B) {
			sz := summary.NewSummarizer(eng.Dataguides(), eng.Graph())
			sz.NoCache = noCache
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sz.Connections(rs)
			}
		})
	}
}

// --- A4: context-index probe ablation — Fig. 8 index vs full scan ---

func BenchmarkAblationContextProbe(b *testing.B) {
	col := WorldFactbook(0.1)
	ix := index.Build(col)
	expr := fulltext.MustParseQuery(`"United States"`)
	b.Run("fig8_index", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n = len(ix.PathsForExpr(expr))
		}
		b.ReportMetric(float64(n), "paths")
	})
	b.Run("scan_all_nodes", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			// Oracle-style scan: evaluate the expression against every
			// node's direct text, collecting matching paths.
			paths := make(map[string]bool)
			for _, d := range col.Docs() {
				doc := d
				doc.Walk(func(nd *Node) bool {
					if nd.Text != "" && expr.Matches(fulltext.NewContent(nd.Text)) {
						paths[col.Dict().Path(nd.Path)] = true
					}
					return true
				})
			}
			n = len(paths)
		}
		b.ReportMetric(float64(n), "paths")
	})
}

// --- Substrate benchmarks ---

func BenchmarkIndexBuild(b *testing.B) {
	col := WorldFactbook(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		index.Build(col)
	}
	b.ReportMetric(float64(col.NumNodes()), "nodes")
}

func BenchmarkEngineBuild(b *testing.B) {
	col := WorldFactbook(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewEngine(col, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeyVerification(b *testing.B) {
	col := WorldFactbook(benchScale)
	k := keys.MustParse("(/country/name, /country/year, ../trade_country)")
	p := col.Dict().LookupPath(pcP)
	var refs []NodeRef
	col.EachNode(func(d *Document, n *Node) {
		if n.Path == p {
			refs = append(refs, NodeRef{Doc: d.ID, Dewey: n.Dewey})
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := keys.Verify(col, k, refs); len(vs) != 0 {
			b.Fatalf("violations: %v", vs)
		}
	}
	b.ReportMetric(float64(len(refs)), "keys_checked")
}

func BenchmarkOLAPAggregate(b *testing.B) {
	eng := wfbEngine(b, benchScale)
	s := sessionQuery1Refined(b, eng)
	star, err := s.BuildCube(CubeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ft := star.FactTable("import-trade-percentage")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ft.GroupBy([]string{"year"}, []rel.AggSpec{{Fn: rel.Sum, Col: "import-trade-percentage"}}); err != nil {
			b.Fatal(err)
		}
	}
}
