package seda

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seda/internal/keys"
	"seda/internal/summary"
)

// query1 is the paper's running example (§1).
const query1 = `(*, "United States") AND (trade_country, *) AND (percentage, *)`

const (
	nameP = "/country/name"
	tcP   = "/country/economy/import_partners/item/trade_country"
	pcP   = "/country/economy/import_partners/item/percentage"
	itP   = "/country/economy/import_partners/item"
)

// wfbEngine builds an engine over a scaled World Factbook corpus with the
// Figure 3(b) catalog loaded.
func wfbEngine(t testing.TB, scale float64) *Engine {
	t.Helper()
	col := WorldFactbook(scale)
	eng, err := NewEngine(col, Config{})
	if err != nil {
		t.Fatal(err)
	}
	baseKey, err := ParseKey("(/country/name, /country/year)")
	if err != nil {
		t.Fatal(err)
	}
	cat := eng.Catalog()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(cat.AddDimension("country", ContextEntry{Context: nameP, Key: baseKey}))
	must(cat.AddDimension("year", ContextEntry{Context: "/country/year", Key: baseKey}))
	must(cat.AddDimension("import-country", ContextEntry{Context: tcP, Key: keys.MustParse("(/country/name, /country/year, .)")}))
	must(cat.AddFact("import-trade-percentage", ContextEntry{Context: pcP, Key: keys.MustParse("(/country/name, /country/year, ../trade_country)")}))
	must(cat.AddFact("GDP",
		ContextEntry{Context: "/country/economy/GDP", Key: baseKey},
		ContextEntry{Context: "/country/economy/GDP_ppp", Key: baseKey},
	))
	return eng
}

// TestQuery1Figure3 walks the paper's full scenario on the generated World
// Factbook corpus: search, context disambiguation, connection choice,
// complete results, star schema, and an OLAP aggregate.
func TestQuery1Figure3(t *testing.T) {
	eng := wfbEngine(t, 0.05)
	s, err := eng.NewSession(query1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TopK(10); err != nil {
		t.Fatal(err)
	}
	ctxs := s.ContextSummary()
	if len(ctxs) != 3 {
		t.Fatalf("context buckets = %d", len(ctxs))
	}
	// The three §1 contexts of "United States" must all be present (plus
	// the long tail of stat contexts).
	have := map[string]bool{}
	for _, e := range ctxs[0].Entries {
		have[e.PathString] = true
	}
	for _, want := range []string{nameP, tcP, "/country/economy/export_partners/item/trade_country"} {
		if !have[want] {
			t.Errorf("US context summary missing %s", want)
		}
	}
	// trade_country and percentage each appear in import and export
	// contexts — the paper's 2x2.
	if len(ctxs[1].Entries) != 2 || len(ctxs[2].Entries) != 2 {
		t.Fatalf("trade_country/percentage contexts = %d/%d, want 2/2",
			len(ctxs[1].Entries), len(ctxs[2].Entries))
	}
	// Refine to the import interpretation.
	if err := s.RefineContexts(0, nameP); err != nil {
		t.Fatal(err)
	}
	if err := s.RefineContexts(1, tcP); err != nil {
		t.Fatal(err)
	}
	if err := s.RefineContexts(2, pcP); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TopK(20); err != nil {
		t.Fatal(err)
	}
	conns, err := s.ConnectionSummary()
	if err != nil {
		t.Fatal(err)
	}
	// The §6 ambiguity: same-item and cross-item joins both proposed for
	// (trade_country, percentage).
	dict := eng.Collection().Dict()
	var pick []int
	sawCrossItem := false
	for i, cn := range conns {
		if cn.Kind != summary.Tree {
			continue
		}
		jp := dict.Path(cn.JoinPath)
		if cn.TermA == 1 && cn.TermB == 2 && jp == itP {
			pick = append(pick, i)
		}
		if cn.TermA == 1 && cn.TermB == 2 && jp == "/country/economy/import_partners" {
			sawCrossItem = true
		}
		if cn.TermA == 0 && cn.TermB == 1 && jp == "/country" {
			pick = append(pick, i)
		}
	}
	if !sawCrossItem {
		t.Error("cross-item connection not proposed (§6 two-ways ambiguity)")
	}
	if len(pick) != 2 {
		t.Fatalf("expected same-item and name joins, got %d", len(pick))
	}
	if err := s.ChooseConnections(pick...); err != nil {
		t.Fatal(err)
	}
	tuples, err := s.CompleteResults()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) == 0 {
		t.Fatal("empty complete result set")
	}
	star, err := s.BuildCube(CubeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ft := star.FactTable("import-trade-percentage")
	if ft == nil {
		t.Fatal("no fact table")
	}
	wantCols := "name,year,trade_country,import-trade-percentage"
	if strings.Join(ft.Cols, ",") != wantCols {
		t.Fatalf("fact cols = %v", ft.Cols)
	}
	if ft.NumRows() != len(tuples) {
		t.Errorf("fact rows = %d, tuples = %d", ft.NumRows(), len(tuples))
	}
	// Year dimension auto-added; every US partner percentage is keyed.
	if star.DimTable("year") == nil {
		t.Error("year dimension not auto-added")
	}
	// Rows only reference United States (term 0 was restricted).
	for _, r := range ft.Rows {
		if r[0].Str != "United States" {
			t.Errorf("unexpected country %q", r[0].Str)
		}
		if !r[3].IsNum {
			t.Errorf("measure not numeric: %v", r[3])
		}
	}
	// OLAP hand-off.
	oc, err := eng.Analyze(star, "import-trade-percentage", []string{"year", "trade_country"})
	if err != nil {
		t.Fatal(err)
	}
	byYear, err := oc.Aggregate([]string{"year"}, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if byYear.NumRows() == 0 {
		t.Error("no aggregate rows")
	}
}

// TestMondialLinkedExploration exercises link discovery and link-backed
// connections on the Mondial corpus (the Figure 1 graph).
func TestMondialLinkedExploration(t *testing.T) {
	col := Mondial(0.02)
	eng, err := NewEngine(col, MondialConfig())
	if err != nil {
		t.Fatal(err)
	}
	if eng.Graph().NumEdges() == 0 {
		t.Fatal("no link edges discovered")
	}
	s, err := eng.NewSession(`(/sea/name, "Pacific Ocean") AND (/country/name, *)`)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no cross-document results through sea-country links")
	}
	if rs[0].Nodes[0].Doc == rs[0].Nodes[1].Doc {
		t.Error("expected a cross-document tuple")
	}
	conns, err := s.ConnectionSummary()
	if err != nil {
		t.Fatal(err)
	}
	foundLink := false
	for _, cn := range conns {
		if cn.Kind == summary.LinkEdge && cn.Support > 0 {
			foundLink = true
		}
	}
	if !foundLink {
		t.Error("no supported link connection proposed")
	}
}

// TestSchemaEvolutionGDPFact verifies the §7 heterogeneity handling: one
// fact defined over both GDP and GDP_ppp contexts extracts across the 2005
// schema change.
func TestSchemaEvolutionGDPFact(t *testing.T) {
	eng := wfbEngine(t, 0.05)
	s, err := eng.NewSession(`(/country/name, *)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CompleteResults(); err != nil {
		t.Fatal(err)
	}
	star, err := s.BuildCube(CubeOptions{AddFacts: []string{"GDP"}, RemoveDimensions: []string{"country"}})
	if err != nil {
		t.Fatal(err)
	}
	gt := star.FactTable("GDP")
	if gt == nil {
		t.Fatal("no GDP fact table")
	}
	years := map[string]bool{}
	for _, r := range gt.Rows {
		years[r[1].Str] = true
	}
	// Both pre-2005 (GDP) and post-2005 (GDP_ppp) years must appear.
	if !years["2002"] || !years["2007"] {
		t.Errorf("GDP fact missing evolution years: %v", years)
	}
}

// TestDiscoverKeyOnWFB checks the GORDIAN-style discovery finds a valid
// key for the percentage context.
func TestDiscoverKeyOnWFB(t *testing.T) {
	col := WorldFactbook(0.03)
	k, ok := DiscoverKey(col, pcP)
	if !ok {
		t.Fatal("no key discovered for percentage")
	}
	if !strings.Contains(k.String(), "../trade_country") {
		t.Errorf("discovered key %s lacks the sibling component", k)
	}
}

// TestPublicLoadSaveRoundtrip exercises LoadXMLDir and collection
// persistence through the public API.
func TestPublicLoadSaveRoundtrip(t *testing.T) {
	dir := t.TempDir()
	col := WorldFactbook(0.01)
	for i, d := range col.Docs() {
		var buf bytes.Buffer
		if err := d.WriteXML(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%03d.xml", i)), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := LoadXMLDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != col.NumDocs() {
		t.Fatalf("loaded %d docs, want %d", loaded.NumDocs(), col.NumDocs())
	}
	if loaded.Stats().NumPaths != col.Stats().NumPaths {
		t.Errorf("paths %d != %d", loaded.Stats().NumPaths, col.Stats().NumPaths)
	}
	// Binary persistence.
	var buf bytes.Buffer
	if err := col.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := LoadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumNodes() != col.NumNodes() {
		t.Errorf("nodes %d != %d", re.NumNodes(), col.NumNodes())
	}
}

// TestDataguideSweepMonotonic is the E5 shape check at small scale: guide
// counts shrink as the threshold drops, and threshold 0 gives near one
// guide per distinct profile.
func TestDataguideSweepMonotonic(t *testing.T) {
	col := WorldFactbook(0.05)
	prev := -1
	for _, th := range []float64{0.8, 0.6, 0.4, 0.2} {
		dg, err := BuildDataguides(col, th)
		if err != nil {
			t.Fatal(err)
		}
		if err := dg.CoverageInvariant(); err != nil {
			t.Fatal(err)
		}
		n := len(dg.Guides)
		if prev >= 0 && n > prev {
			t.Errorf("guides grew when threshold dropped to %v: %d > %d", th, n, prev)
		}
		prev = n
	}
}
