#!/bin/sh
# Observability smoke test: boot sedad, drive one traced query, scrape
# GET /metrics, and validate the exposition against the Prometheus text
# format grammar with promcheck — failing on unparseable output or a
# missing metric family. Run from the repo root (`make metrics-smoke`).
set -eu

GO="${GO:-go}"
ADDR="${ADDR:-127.0.0.1:18231}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
PID=""
cleanup() {
	[ -n "$PID" ] && kill "$PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

"$GO" build -o "$WORK/sedad" ./cmd/sedad
"$GO" build -o "$WORK/promcheck" ./cmd/promcheck

# -compact-threshold 0 disables the background compactor so the
# lifecycle phase below observes the masked ratio deterministically and
# drives the compaction itself (the threshold path is covered by
# TestBackgroundCompaction in CI). -data plus a 1-byte resident budget
# forces disk-backed paging: the engine persists after first build,
# re-binds to its snapshot, and queries page shards in from the file —
# so the seda_paging_disk_* families below must move. Four shards so
# the pager always has a cold shard to evict (it never evicts the one
# shard a query is standing on).
"$WORK/sedad" -addr "$ADDR" -preload worldfactbook -scale 0.05 -shards 4 -slowlog 5s -compact-threshold 0 -data "$WORK/data" -resident-budget 1 2>"$WORK/sedad.log" &
PID=$!

ok=""
for _ in $(seq 1 50); do
	if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then ok=1; break; fi
	sleep 0.2
done
if [ -z "$ok" ]; then
	echo "metrics-smoke: sedad did not come up on $ADDR" >&2
	cat "$WORK/sedad.log" >&2
	exit 1
fi

# One real query (builds the engine) with explain=true: the response must
# carry the trace, and the search/cache/engine families must appear in the
# scrape below.
SID="$(curl -fsS -X POST "$BASE/sessions" \
	-d '{"collection":"worldfactbook","query":"(trade_country, germany) AND (percentage, *)"}' \
	| sed -n 's/.*"session":"\([^"]*\)".*/\1/p')"
if [ -z "$SID" ]; then
	echo "metrics-smoke: could not create a session" >&2
	exit 1
fi
RESP="$(curl -fsS -X POST "$BASE/sessions/$SID/query" -d '{"k":5,"explain":true}')"
case "$RESP" in
*'"trace"'*) ;;
*)
	echo "metrics-smoke: explain response carries no trace: $RESP" >&2
	exit 1
	;;
esac

curl -fsS "$BASE/metrics" | "$WORK/promcheck" -require \
	seda_topk_searches_total,seda_topk_search_duration_seconds,seda_http_requests_total,seda_http_request_duration_seconds,seda_topk_cache_hits_total,seda_topk_cache_misses_total,seda_engine_phase_seconds,seda_engine_ops_total,seda_sessions_active,seda_build_info,seda_uptime_seconds,seda_paging_pageins_total,seda_paging_encoded_heap_bytes,seda_paging_disk_reads_total,seda_paging_disk_read_seconds

# Disk-backed paging must actually have happened: the traced query above
# ran against a snapshot-bound engine under a 1-byte budget, so at least
# one shard section was re-read (and CRC-verified) from the snapshot
# file.
case "$(curl -fsS "$BASE/metrics")" in
*'seda_paging_disk_reads_total 0'*)
	echo "metrics-smoke: disk-backed engine served without a single disk read" >&2
	exit 1
	;;
esac

# Compaction under load: upload a small collection, delete a document (the
# tombstone-ratio gauge must report the pressure), then compact while a
# background query loop hammers the collection — the rewrite swaps
# generations under live traffic. The final scrape must carry the
# lifecycle families.
curl -fsS -X POST "$BASE/collections" -d \
	'{"name":"smokelabs","documents":[{"name":"a.xml","xml":"<lab><name>alpha</name></lab>"},{"name":"b.xml","xml":"<lab><name>beta</name></lab>"}]}' \
	>/dev/null
curl -fsS -X DELETE "$BASE/collections/smokelabs/documents/b.xml" >/dev/null
case "$(curl -fsS "$BASE/metrics")" in
*'seda_tombstone_ratio{collection="smokelabs"} 0.5'*) ;;
*)
	echo "metrics-smoke: tombstone-ratio gauge missing the masked collection" >&2
	exit 1
	;;
esac
(
	for _ in $(seq 1 20); do
		QSID="$(curl -fsS -X POST "$BASE/sessions" \
			-d '{"collection":"smokelabs","query":"(name, alpha)"}' \
			| sed -n 's/.*"session":"\([^"]*\)".*/\1/p')"
		curl -fsS "$BASE/sessions/$QSID/topk?k=5" >/dev/null
	done
) &
LOAD=$!
curl -fsS -X POST "$BASE/collections/smokelabs/compact" >/dev/null
if ! wait "$LOAD"; then
	echo "metrics-smoke: query load failed during compaction" >&2
	exit 1
fi
curl -fsS "$BASE/metrics" | "$WORK/promcheck" -require \
	seda_compactions_total,seda_tombstone_ratio,seda_engine_ops_total

echo "metrics-smoke: ok"
