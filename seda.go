// Package seda is a from-scratch reproduction of SEDA — "Search Driven
// Analysis of Heterogeneous XML Data" (Balmin, Colby, Curtmola, Li, Özcan;
// CIDR 2009) — as a reusable Go library.
//
// SEDA lets a user explore a heterogeneous XML corpus with keyword-style
// query terms, disambiguate what the terms mean (context summaries) and how
// the matches relate (connection summaries), then materialize the complete
// result set and derive a star schema — facts and dimensions with relative
// XML keys — that an OLAP engine analyzes.
//
// The top-level flow (paper Figure 6):
//
//	col := seda.WorldFactbook(0.1)                  // or load your own XML
//	eng, _ := seda.NewEngine(col, seda.Config{})
//	s, _ := eng.NewSession(`(*, "United States") AND (trade_country, *) AND (percentage, *)`)
//	top, _ := s.TopK(10)                            // ranked tuples
//	ctxs := s.ContextSummary()                      // what can each term mean?
//	s.RefineContexts(1, "/country/economy/import_partners/item/trade_country")
//	s.TopK(10)
//	conns, _ := s.ConnectionSummary()               // how do matches relate?
//	s.ChooseConnections(0, 1)
//	star, _ := s.BuildCube(seda.CubeOptions{})      // fact + dimension tables
//	cube, _ := eng.Analyze(star, "percentage", []string{"name", "year"})
//
// Everything is implemented on the Go standard library: the XML store and
// Dewey identifiers, the full-text and context indexes, the data graph with
// IDREF/XLink/value edges, dataguide summaries with overlap merging, the
// TA-style top-k search, holistic twig joins, relative XML keys, star
// schema construction, an OLAP substrate, versioned engine snapshots
// (SaveEngine/LoadEngine) that persist every derived layer to disk, and
// incremental ingest ((*Engine).AddDocuments) that appends documents to a
// live engine by deriving a new generation instead of rebuilding.
package seda

import (
	"io"
	"os"
	"path/filepath"
	"sort"

	"seda/internal/core"
	"seda/internal/cube"
	"seda/internal/datagen"
	"seda/internal/dataguide"
	"seda/internal/graph"
	"seda/internal/keys"
	"seda/internal/olap"
	"seda/internal/query"
	"seda/internal/rel"
	"seda/internal/server"
	"seda/internal/store"
	"seda/internal/summary"
	"seda/internal/topk"
	"seda/internal/twig"
	"seda/internal/xmldoc"
)

// Core engine types.
type (
	// Engine is the per-collection SEDA runtime: indexes, data graph,
	// dataguide summary, and the fact/dimension catalog.
	Engine = core.Engine
	// Session is one exploration loop: query → top-k → summaries →
	// refinement → complete results → cube.
	Session = core.Session
	// Config tunes engine construction.
	Config = core.Config
	// BackingMode selects the paging backstore for a budgeted engine:
	// where an evicted shard's encoded bytes live until the next touch.
	BackingMode = core.BackingMode
	// ValueLink declares a value-based (PK/FK) edge for the data graph.
	ValueLink = core.ValueLink
	// IngestDoc is one raw XML document for (*Engine).AddDocumentsXML —
	// the incremental ingest path that derives a new engine generation
	// without a full rebuild.
	IngestDoc = core.IngestDoc
)

// Storage and model types.
type (
	// Collection is an indexed set of XML documents.
	Collection = store.Collection
	// Document is one parsed XML document.
	Document = xmldoc.Document
	// Node is an XML element or attribute node.
	Node = xmldoc.Node
	// NodeRef addresses a node across the collection (document + Dewey id).
	NodeRef = xmldoc.NodeRef
	// DiscoverOptions configures ID/IDREF/XLink link discovery.
	DiscoverOptions = graph.DiscoverOptions
	// ValueLinkOptions tunes automatic PK/FK value-link discovery.
	ValueLinkOptions = graph.ValueLinkOptions
	// ValueLinkCandidate is one discovered PK/FK relationship.
	ValueLinkCandidate = graph.ValueLinkCandidate
	// EntityRegistry labels context paths with real-world entity names
	// shown in context summaries (§5's abstraction).
	EntityRegistry = summary.EntityRegistry
)

// Query and result types.
type (
	// Query is a set of (context, search) query terms.
	Query = query.Query
	// Term is one query term.
	Term = query.Term
	// SearchResult is one ranked top-k tuple.
	SearchResult = topk.Result
	// SearchOptions tunes the top-k search.
	SearchOptions = topk.Options
	// ContextBucket is one term's context summary.
	ContextBucket = summary.ContextBucket
	// Connection is one proposed relationship between term matches.
	Connection = summary.Connection
	// Tuple is one complete-result row (Figure 3(a)'s nodeid/path pairs).
	Tuple = twig.Tuple
)

// Cube and analysis types.
type (
	// Catalog is the fact/dimension catalog (paper's F and D sets).
	Catalog = cube.Catalog
	// ContextEntry is one (context, key) row of a definition.
	ContextEntry = cube.ContextEntry
	// CubeOptions steers cube construction (augmentation, new defs).
	CubeOptions = cube.Options
	// NewDef defines a user-created fact or dimension from a result column.
	NewDef = cube.NewDef
	// Star is a generated star schema.
	Star = cube.Star
	// Key is a relative XML key.
	Key = keys.Key
	// Table is a relational table (fact or dimension).
	Table = rel.Table
	// Cube is an analyzable OLAP cube.
	Cube = olap.Cube
	// DataguideSet is the dataguide summary of a collection.
	DataguideSet = dataguide.Set
)

// Serving tier types (the cmd/sedad daemon; see internal/server).
type (
	// Server is the HTTP/JSON serving tier exposing the Figure 6 loop as
	// stateful endpoints, with an engine registry, a TTL/LRU-evicted
	// session table, and a bounded top-k result cache.
	Server = server.Server
	// ServerOptions tunes session TTL, table capacity, cache size, build
	// and search parallelism, and the default builtin corpus scale.
	ServerOptions = server.Options
	// EngineRegistry maps collection names to lazily-built engines.
	EngineRegistry = server.Registry
)

// MaxShards caps a collection's horizontal index shard count on the
// serving tier (explicit requests beyond it are rejected, server
// defaults are clamped).
const MaxShards = server.MaxShards

// Backing modes for Config.Backing. BackingAuto (the zero value) pages
// evicted shards from the snapshot file when the engine has one and from
// the heap otherwise; BackingHeap forces in-heap payloads; BackingDisk
// forces positional reads; BackingMmap maps the snapshot and falls back
// to positional reads where the platform lacks mmap. Answers are
// byte-identical under every mode.
const (
	BackingAuto = core.BackingAuto
	BackingHeap = core.BackingHeap
	BackingDisk = core.BackingDisk
	BackingMmap = core.BackingMmap
)

// NewServer returns an http.Handler serving the SEDA exploration API.
// Register collections up front via (*Server).Registry() or at runtime
// with POST /collections.
func NewServer(opts ServerOptions) *Server { return server.New(opts) }

// NewEngine indexes a collection and prepares all SEDA components.
func NewEngine(col *Collection, cfg Config) (*Engine, error) {
	return core.NewEngine(col, cfg)
}

// NewCollection returns an empty collection; add documents with
// (*Collection).AddXML or (*Collection).AddDocument.
func NewCollection() *Collection { return store.NewCollection() }

// LoadCollection reads a collection saved with (*Collection).Save.
func LoadCollection(r io.Reader) (*Collection, error) { return store.Load(r) }

// Engine snapshots: every derived layer of an engine — path dictionary,
// collection with statistics, full-text indexes, link graph, dataguide
// summary — persisted as one versioned, checksummed container, so a
// process restart costs O(read) instead of O(rebuild).

// LoadedEngine is the result of LoadEngineAuto: the engine plus where it
// came from (snapshot vs a rebuilt v1 collection stream).
type LoadedEngine = core.LoadedEngine

// ErrSnapshotConfigMismatch reports an engine snapshot built under a
// different Config than the caller's (dataguide threshold, link
// discovery, value links); the caller should rebuild instead of loading.
var ErrSnapshotConfigMismatch = core.ErrConfigMismatch

// SaveEngine writes an engine snapshot to w.
func SaveEngine(w io.Writer, e *Engine) error { return core.SaveEngine(w, e, "") }

// SaveEngineFile writes an engine snapshot to path atomically (temp file
// plus rename): readers never observe a partial snapshot.
func SaveEngineFile(path string, e *Engine) error { return core.SaveEngineFile(path, e, "") }

// LoadEngine reads an engine snapshot, verifying it was built under cfg;
// a mismatch returns ErrSnapshotConfigMismatch. cfg.Parallelism applies
// to the loaded engine's searches.
func LoadEngine(r io.Reader, cfg Config) (*Engine, error) { return core.LoadEngine(r, cfg, "") }

// LoadEngineFile is LoadEngine over a file.
func LoadEngineFile(path string, cfg Config) (*Engine, error) {
	return core.LoadEngineFile(path, cfg, "")
}

// LoadEngineAuto loads an engine from path adopting the snapshot's stored
// config; a v1 collection stream (written by (*Collection).Save) is
// rebuilt under fallback instead.
func LoadEngineAuto(path string, fallback Config) (*LoadedEngine, error) {
	return core.LoadEngineAuto(path, fallback)
}

// LoadXMLDir loads every *.xml file under dir (sorted for determinism)
// into a fresh collection.
func LoadXMLDir(dir string) (*Collection, error) {
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && filepath.Ext(path) == ".xml" {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	col := store.NewCollection()
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		if _, err := col.AddXML(filepath.Base(f), data); err != nil {
			return nil, err
		}
	}
	return col, nil
}

// ParseQuery parses the textual query syntax, e.g.
// `(*, "United States") AND (trade_country, *)`.
func ParseQuery(s string) (Query, error) { return query.Parse(s) }

// ParseKey parses a relative XML key such as
// "(/country, /country/year, ../trade_country)".
func ParseKey(s string) (Key, error) { return keys.Parse(s) }

// DiscoverKey searches for a relative key for the nodes at contextPath —
// the GORDIAN-style automation the paper lists as future work.
func DiscoverKey(col *Collection, contextPath string) (Key, bool) {
	return keys.Discover(col, contextPath, keys.DiscoverOptions{})
}

// Corpus generators reproducing the paper's four evaluation datasets at a
// given scale (1.0 = paper size). See internal/datagen for the calibrated
// statistics.

// WorldFactbook generates the six annual releases of the World Factbook
// corpus (scale 1.0 = 1600 documents).
func WorldFactbook(scale float64) *Collection { return datagen.WorldFactbook(scale) }

// Mondial generates the linked geography corpus (scale 1.0 = 5563
// documents). Use MondialConfig for the matching link discovery settings.
func Mondial(scale float64) *Collection { return datagen.Mondial(scale) }

// MondialConfig returns the engine Config whose link discovery resolves
// Mondial's reference attributes. It shares the dataset→config mapping
// with the serving registry, so engines built through either fingerprint
// identically and can exchange snapshots.
func MondialConfig() Config {
	return Config{Discover: datagen.DiscoverOptionsFor("mondial")}
}

// GoogleBase generates the flat, regular product-listing corpus (scale
// 1.0 = 10000 documents in 88 item types).
func GoogleBase(scale float64) *Collection { return datagen.GoogleBase(scale) }

// RecipeML generates the recipe corpus (scale 1.0 = 10988 documents in 3
// structural families).
func RecipeML(scale float64) *Collection { return datagen.RecipeML(scale) }

// BuildDataguides computes the dataguide summary of a collection at the
// given overlap threshold (the paper's Table 1 uses 0.40).
func BuildDataguides(col *Collection, threshold float64) (*DataguideSet, error) {
	return dataguide.Build(col, threshold)
}

// Aggregate names re-exported for OLAP calls.
const (
	Sum   = rel.Sum
	Count = rel.Count
	Avg   = rel.Avg
	Min   = rel.Min
	Max   = rel.Max
)
