package seda_test

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Documentation guards, compiled and run by `go test` (and CI's docs
// job): every internal package must carry a package comment, and every
// relative link or intra-document anchor in the top-level markdown docs
// must resolve. They keep the docs pass from rotting the way the
// pre-PR-4 README did.

// docFiles are the markdown documents whose links are checked.
var docFiles = []string{"README.md", "ARCHITECTURE.md", "ROADMAP.md"}

// TestInternalPackageComments fails if any internal/ package lacks a
// gofmt-style package comment ("Package <name> …" directly above the
// package clause in at least one file).
func TestInternalPackageComments(t *testing.T) {
	pkgs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no internal packages found (run from the repo root)")
	}
	for _, dir := range pkgs {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		name := filepath.Base(dir)
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		var doc string
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			fset := token.NewFileSet()
			parsed, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Errorf("%s: %v", f, err)
				continue
			}
			if parsed.Doc != nil {
				doc = parsed.Doc.Text()
				break
			}
		}
		if doc == "" {
			t.Errorf("package internal/%s has no package comment", name)
			continue
		}
		if !strings.HasPrefix(doc, "Package "+name) {
			t.Errorf("package internal/%s: package comment must start with %q, got %q",
				name, "Package "+name, firstLine(doc))
		}
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks checks every markdown link in the top-level docs:
// http(s) URLs are accepted as-is (no network in tests), relative paths
// must exist on disk, and #anchors must match a heading in the target
// document (GitHub slug rules: lowercase, punctuation stripped, spaces
// to dashes).
func TestMarkdownLinks(t *testing.T) {
	for _, doc := range docFiles {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v (docs moved? update docFiles)", doc, err)
		}
		content := string(raw)
		for _, m := range mdLink.FindAllStringSubmatch(content, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			if path != "" {
				if _, err := os.Stat(path); err != nil {
					t.Errorf("%s: broken link %q: %v", doc, target, err)
					continue
				}
			}
			if frag != "" {
				fragDoc := content
				if path != "" && path != doc {
					b, err := os.ReadFile(path)
					if err != nil || !strings.HasSuffix(path, ".md") {
						continue // anchor into a non-markdown target: nothing to check
					}
					fragDoc = string(b)
				}
				if !hasAnchor(fragDoc, frag) {
					t.Errorf("%s: anchor %q not found in %s", doc, "#"+frag, orSelf(path, doc))
				}
			}
		}
	}
}

func orSelf(path, self string) string {
	if path == "" {
		return self
	}
	return path
}

// hasAnchor reports whether any heading of the markdown document slugs to
// frag under GitHub's rules.
func hasAnchor(content, frag string) bool {
	for _, line := range strings.Split(content, "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		heading = strings.TrimSpace(heading)
		if githubSlug(heading) == frag {
			return true
		}
	}
	return false
}

// githubSlug approximates GitHub's heading-to-anchor slug: lowercase,
// markdown emphasis/code markers and punctuation removed, spaces and
// dashes kept as dashes.
func githubSlug(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		case r > 127: // non-ASCII letters survive slugging
			fmt.Fprintf(&b, "%c", r)
		}
	}
	return b.String()
}
