package seda_test

import (
	"fmt"
	"log"

	"seda"
)

// Example walks the paper's core loop on a tiny corpus: search, inspect
// contexts, and read the best answer.
func Example() {
	col := seda.NewCollection()
	docs := []string{
		`<country><name>Mexico</name><year>2003</year><economy><import_partners>
			<item><trade_country>United States</trade_country><percentage>70.6%</percentage></item>
		 </import_partners></economy></country>`,
		`<country><name>United States</name><year>2002</year><economy><GDP>10.082T</GDP></economy></country>`,
	}
	for i, d := range docs {
		if _, err := col.AddXML(fmt.Sprintf("doc%d", i), []byte(d)); err != nil {
			log.Fatal(err)
		}
	}
	eng, err := seda.NewEngine(col, seda.Config{})
	if err != nil {
		log.Fatal(err)
	}
	s, err := eng.NewSession(`(trade_country, "United States") AND (percentage, *)`)
	if err != nil {
		log.Fatal(err)
	}
	results, err := s.TopK(1)
	if err != nil {
		log.Fatal(err)
	}
	best := results[0]
	fmt.Printf("%s imports %s from %s\n",
		"Mexico",
		col.Content(best.Nodes[1]),
		col.Content(best.Nodes[0]))
	// Output: Mexico imports 70.6% from United States
}

// ExampleParseQuery shows the textual query syntax of Definition 3.
func ExampleParseQuery() {
	q, err := seda.ParseQuery(`(*, "United States") AND (trade_country, *) AND (percentage, *)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(q.Terms), "terms:", q.Terms[1])
	// Output: 3 terms: (trade_country, *)
}

// ExampleParseKey shows the paper's relative XML key for the percentage
// fact (§7).
func ExampleParseKey() {
	k, err := seda.ParseKey("(/country, /country/year, ../trade_country)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(k)
	// Output: (/country, /country/year, ../trade_country)
}

// ExampleBuildDataguides summarizes a heterogeneous collection with the
// paper's 40% overlap threshold.
func ExampleBuildDataguides() {
	col := seda.RecipeML(0.01) // 110 recipe/menu/grocery documents
	dg, err := seda.BuildDataguides(col, 0.40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d documents -> %d dataguides\n", col.NumDocs(), len(dg.Guides))
	// Output: 110 documents -> 3 dataguides
}

// ExampleDiscoverKey runs GORDIAN-style key discovery on the generated
// World Factbook corpus.
func ExampleDiscoverKey() {
	col := seda.WorldFactbook(0.02)
	k, ok := seda.DiscoverKey(col, "/country/economy/import_partners/item/percentage")
	fmt.Println(ok, k)
	// Output: true (/country, ../trade_country)
}
