package seda_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"seda"
)

// Example walks the paper's core loop on a tiny corpus: search, inspect
// contexts, and read the best answer.
func Example() {
	col := seda.NewCollection()
	docs := []string{
		`<country><name>Mexico</name><year>2003</year><economy><import_partners>
			<item><trade_country>United States</trade_country><percentage>70.6%</percentage></item>
		 </import_partners></economy></country>`,
		`<country><name>United States</name><year>2002</year><economy><GDP>10.082T</GDP></economy></country>`,
	}
	for i, d := range docs {
		if _, err := col.AddXML(fmt.Sprintf("doc%d", i), []byte(d)); err != nil {
			log.Fatal(err)
		}
	}
	eng, err := seda.NewEngine(col, seda.Config{})
	if err != nil {
		log.Fatal(err)
	}
	s, err := eng.NewSession(`(trade_country, "United States") AND (percentage, *)`)
	if err != nil {
		log.Fatal(err)
	}
	results, err := s.TopK(1)
	if err != nil {
		log.Fatal(err)
	}
	best := results[0]
	fmt.Printf("%s imports %s from %s\n",
		"Mexico",
		col.Content(best.Nodes[1]),
		col.Content(best.Nodes[0]))
	// Output: Mexico imports 70.6% from United States
}

// ExampleParseQuery shows the textual query syntax of Definition 3.
func ExampleParseQuery() {
	q, err := seda.ParseQuery(`(*, "United States") AND (trade_country, *) AND (percentage, *)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(q.Terms), "terms:", q.Terms[1])
	// Output: 3 terms: (trade_country, *)
}

// ExampleParseKey shows the paper's relative XML key for the percentage
// fact (§7).
func ExampleParseKey() {
	k, err := seda.ParseKey("(/country, /country/year, ../trade_country)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(k)
	// Output: (/country, /country/year, ../trade_country)
}

// ExampleBuildDataguides summarizes a heterogeneous collection with the
// paper's 40% overlap threshold.
func ExampleBuildDataguides() {
	col := seda.RecipeML(0.01) // 110 recipe/menu/grocery documents
	dg, err := seda.BuildDataguides(col, 0.40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d documents -> %d dataguides\n", col.NumDocs(), len(dg.Guides))
	// Output: 110 documents -> 3 dataguides
}

// ExampleSaveEngineFile persists an engine — every derived layer, not
// just the documents — and reloads it, so a restart costs O(read)
// instead of O(rebuild). LoadEngineFile verifies the snapshot was built
// under the same Config.
func ExampleSaveEngineFile() {
	col := seda.NewCollection()
	if _, err := col.AddXML("a.xml", []byte(`<lab><name>alpha</name></lab>`)); err != nil {
		log.Fatal(err)
	}
	eng, err := seda.NewEngine(col, seda.Config{})
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "seda-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "labs.snap")
	if err := seda.SaveEngineFile(path, eng); err != nil {
		log.Fatal(err)
	}

	loaded, err := seda.LoadEngineFile(path, seda.Config{})
	if err != nil {
		log.Fatal(err)
	}
	s, err := loaded.NewSession(`(name, alpha)`)
	if err != nil {
		log.Fatal(err)
	}
	results, err := s.TopK(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d docs loaded, best hit: %s\n",
		loaded.Collection().NumDocs(), loaded.Collection().Content(results[0].Nodes[0]))
	// Output: 1 docs loaded, best hit: alpha
}

// ExampleEngine_AddDocuments appends a document to a live engine:
// AddDocumentsXML derives a new engine generation by extending every
// derived layer incrementally — no rebuild — while the old generation
// keeps serving its sessions unchanged. The new generation answers
// byte-identically to a from-scratch build over the same documents.
func ExampleEngine_AddDocuments() {
	col := seda.NewCollection()
	if _, err := col.AddXML("a.xml", []byte(`<lab><name>alpha</name></lab>`)); err != nil {
		log.Fatal(err)
	}
	eng, err := seda.NewEngine(col, seda.Config{})
	if err != nil {
		log.Fatal(err)
	}

	next, err := eng.AddDocumentsXML([]seda.IngestDoc{
		{Name: "b.xml", XML: []byte(`<lab><name>beta</name></lab>`)},
	})
	if err != nil {
		log.Fatal(err)
	}

	s, err := next.NewSession(`(name, beta)`)
	if err != nil {
		log.Fatal(err)
	}
	results, err := s.TopK(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("old generation: %d docs, new generation: %d docs, found %q\n",
		eng.Collection().NumDocs(), next.Collection().NumDocs(),
		next.Collection().Content(results[0].Nodes[0]))
	// Output: old generation: 1 docs, new generation: 2 docs, found "beta"
}

// ExampleDiscoverKey runs GORDIAN-style key discovery on the generated
// World Factbook corpus.
func ExampleDiscoverKey() {
	col := seda.WorldFactbook(0.02)
	k, ok := seda.DiscoverKey(col, "/country/economy/import_partners/item/percentage")
	fmt.Println(ok, k)
	// Output: true (/country, ../trade_country)
}
