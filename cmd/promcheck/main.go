// Command promcheck validates a Prometheus text exposition (format 0.0.4)
// against the format grammar: HELP/TYPE declarations, label escaping,
// histogram bucket monotonicity and +Inf/_count consistency. It reads
// stdin (or a file argument) and exits non-zero on the first violation,
// which makes it a one-line CI gate for a live /metrics endpoint:
//
//	curl -fsS localhost:8080/metrics | promcheck -require seda_topk_searches_total,seda_http_requests_total
//
// -require takes a comma-separated list of metric family names that must
// be present; an exposition that parses but lacks one also fails.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"seda/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric family names that must be present")
	quiet := flag.Bool("q", false, "print nothing on success")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "promcheck: at most one input file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	fams, err := obs.ParseText(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", name, err)
		os.Exit(1)
	}
	present := make(map[string]bool, len(fams))
	samples := 0
	for _, f := range fams {
		present[f.Name] = true
		samples += len(f.Samples)
	}
	var missing []string
	for _, want := range strings.Split(*require, ",") {
		if want = strings.TrimSpace(want); want != "" && !present[want] {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "promcheck: %s: missing required families: %s\n", name, strings.Join(missing, ", "))
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("ok: %d families, %d samples\n", len(fams), samples)
	}
}
