// Command sedad serves SEDA's interactive exploration loop (paper Figure
// 6) as a stateful HTTP/JSON API: collections, sessions, top-k, context
// and connection summaries, refinement, star-schema cubes, and OLAP
// aggregates. See internal/server for the endpoint list and README.md for
// curl examples.
//
// Usage:
//
//	sedad                              # listen on :8080, no preloaded corpora
//	sedad -preload worldfactbook       # register (lazily build) a builtin
//	sedad -addr :9000 -scale 0.2       # bigger generated corpora
//	sedad -parallelism 1               # sequential builds and searches
//	sedad -data ./data                 # disk-backed: engines persist as
//	                                   # snapshots and survive restarts
//	sedad -resident-budget 64MB        # page index shards in on demand and
//	                                   # evict cold ones past the budget
//	sedad -data ./data -mmap           # mmap snapshot files for paging
//	                                   # (pread fallback where unsupported)
//	sedad -slowlog 250ms               # log top-k searches >= 250ms
//	sedad -pprof                       # profiling at /debug/pprof/
//
// GET /metrics serves Prometheus text exposition; every response carries
// an X-Request-ID that also tags access-log and slow-query-log lines.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"seda"
)

// parseByteSize parses a human byte size: a non-negative number with an
// optional KB/MB/GB (or K/M/G, case-insensitive, optionally ending in iB)
// suffix, binary units. "" and "0" mean disabled (0 bytes).
func parseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	upper := strings.ToUpper(s)
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"B", 1},
	} {
		if strings.HasSuffix(upper, u.suffix) {
			mult = u.mult
			upper = strings.TrimSuffix(upper, u.suffix)
			break
		}
	}
	n, err := strconv.ParseFloat(strings.TrimSpace(upper), 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q (use e.g. 64MB, 1.5GB, or a plain byte count)", s)
	}
	return int64(n * float64(mult)), nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Float64("scale", 0.05, "default corpus scale for builtin collections")
	ttl := flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this (0 disables TTL eviction)")
	maxSessions := flag.Int("max-sessions", 1024, "session table capacity (LRU-evicted beyond)")
	cacheSize := flag.Int("cache-size", 256, "top-k result cache entries (0 disables caching)")
	preload := flag.String("preload", "", "comma-separated builtin corpora to register at startup (worldfactbook,mondial,googlebase,recipeml)")
	parallelism := flag.Int("parallelism", 0, "worker goroutines for engine builds and top-k searches (0 = all cores, 1 = sequential)")
	shards := flag.Int("shards", 0, "horizontal index shards per collection (0 = single shard; answers are identical at any setting)")
	residentBudget := flag.String("resident-budget", "", "per-collection shard residency budget, e.g. 64MB or 1.5GB (empty or 0 = fully resident; answers are identical at any setting)")
	mmapOn := flag.Bool("mmap", false, "memory-map snapshot files for disk-backed shard paging instead of positional reads (falls back to reads where mmap is unavailable)")
	compactThreshold := flag.Float64("compact-threshold", 0.3, "background-compact a collection when its tombstone ratio reaches this fraction (0 disables; compaction then runs only on explicit POST /collections/{name}/compact)")
	data := flag.String("data", "", "snapshot directory: persist engines after first build and reload them at boot (empty = memory-only)")
	slowlog := flag.Duration("slowlog", 0, "log top-k searches taking at least this long, with their request id (0 disables)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	flag.Parse()
	if *parallelism < 0 {
		log.Fatal("sedad: -parallelism must be >= 0")
	}
	if *shards < 0 || *shards > seda.MaxShards {
		log.Fatalf("sedad: -shards must be in 0..%d", seda.MaxShards)
	}
	budget, err := parseByteSize(*residentBudget)
	if err != nil {
		log.Fatalf("sedad: -resident-budget: %v", err)
	}
	if *compactThreshold < 0 || *compactThreshold > 1 {
		log.Fatal("sedad: -compact-threshold must be in [0, 1]")
	}

	logger := log.New(os.Stderr, "sedad ", log.LstdFlags|log.Lmsgprefix)

	// The Options zero value means "use the default", so an explicit 0 on
	// the command line maps to the negative "disabled" spelling.
	if *cacheSize == 0 {
		*cacheSize = -1
	}
	if *ttl == 0 {
		*ttl = -1
	}
	srv := seda.NewServer(seda.ServerOptions{
		SessionTTL:         *ttl,
		MaxSessions:        *maxSessions,
		CacheSize:          *cacheSize,
		BuiltinScale:       *scale,
		Parallelism:        *parallelism,
		Shards:             *shards,
		ResidentBudget:     budget,
		Mmap:               *mmapOn,
		AccessLog:          logger,
		SlowQueryThreshold: *slowlog,
		EnablePprof:        *pprofOn,
	})
	srv.Registry().CompactThreshold = *compactThreshold
	// Snapshots load before preloads so a preload of a name already on
	// disk upgrades the discovered entry: the snapshot then serves as that
	// collection's validated build cache.
	if *data != "" {
		loaded, err := srv.Registry().EnableSnapshots(*data, *parallelism)
		if err != nil {
			logger.Fatalf("snapshot dir %s: %v", *data, err)
		}
		logger.Printf("disk-backed registry at %s (%d snapshot(s) found)", *data, len(loaded))
		for _, name := range loaded {
			logger.Printf("registered snapshot collection %q (loaded on first use)", name)
		}
	}
	for _, name := range strings.Split(*preload, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		backing := seda.BackingAuto
		if *mmapOn {
			backing = seda.BackingMmap
		}
		if err := srv.Registry().RegisterBuiltin(name, name, *scale, seda.Config{Parallelism: *parallelism, Shards: *shards, ResidentBudget: budget, Backing: backing}); err != nil {
			logger.Fatalf("preload %s: %v", name, err)
		}
		logger.Printf("registered builtin collection %q (scale %g, built on first use)", name, *scale)
	}

	// The server's own middleware writes the access log (with request ids
	// and per-endpoint metrics), so no wrapper handler is needed here.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		logger.Fatalf("serve: %v", err)
	case s := <-sig:
		logger.Printf("caught %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Printf("shutdown: %v", err)
		}
	}
}
