// Command sedalint is the repo's custom static-analysis suite: four
// analyzers that mechanically enforce the engine's documented invariants
// (see ARCHITECTURE.md "Static analysis"):
//
//	genimmutable  //seda:immutable types written only in //seda:constructor functions
//	nilgate       //seda:nilgated handles nil-checked in //seda:hot packages
//	stickyerr     decode-path errors flow to the sticky error or the caller
//	lockguard     `guarded by <mu>` fields accessed only under their mutex
//
// Usage:
//
//	sedalint [-run a,b] [packages]           # standalone, default ./...
//	go vet -vettool=$(which sedalint) ./...  # as a vet tool
//
// Standalone mode exits 1 when any diagnostic is reported. The vet-tool
// mode implements the cmd/vet unitchecker protocol (-V=full and the
// single *.cfg argument).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"seda/internal/lint"
)

var analyzers = []*lint.Analyzer{
	lint.GenImmutable,
	lint.NilGate,
	lint.StickyErr,
	lint.LockGuard,
}

func main() {
	// cmd/go probes vet tools with -V=full before anything else; a devel
	// version must carry a buildID (cmd/go folds it into its cache keys),
	// so hash the binary itself like x/tools vet tools do.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		fmt.Printf("sedalint version devel buildID=%s\n", selfHash())
		return
	}
	// cmd/vet also asks for the tool's flag definitions as JSON; sedalint
	// exposes none to vet (analyzer selection is a standalone-mode flag).
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Under `go vet -vettool`, the sole argument is a JSON config file.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitchecker(os.Args[1], analyzers))
	}

	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sedalint [flags] [package patterns]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}

	selected, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sedalint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sedalint:", err)
		os.Exit(2)
	}
	pkgs, ann, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sedalint:", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(pkgs, ann, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sedalint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selfHash fingerprints the running binary for the -V=full buildID.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func selectAnalyzers(run string) ([]*lint.Analyzer, error) {
	if run == "" {
		return analyzers, nil
	}
	byName := make(map[string]*lint.Analyzer)
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(run, ",") {
		a := byName[strings.TrimSpace(name)]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
