package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"seda/internal/lint"
)

// vetConfig mirrors the JSON configuration cmd/vet hands a -vettool for
// each package (the x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetDiagnostic is one JSON diagnostic in the format cmd/vet parses from a
// vettool's stdout.
type vetDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// unitchecker analyzes the single package described by cfgFile and returns
// the process exit code: 0 clean, 2 when diagnostics were reported (the
// code cmd/vet expects alongside the JSON on stdout), 1 on failure.
func unitchecker(cfgFile string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sedalint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sedalint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// vet always expects the facts ("vetx") output file to exist, even
	// though sedalint exchanges no facts between packages.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "sedalint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sedalint:", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "sedalint:", err)
		return 1
	}

	ann := harvestModule(fset, cfg, files)
	pkg := &lint.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, ann, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sedalint:", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	out := map[string]map[string][]vetDiagnostic{cfg.ImportPath: {}}
	for _, d := range diags {
		out[cfg.ImportPath][d.Analyzer] = append(out[cfg.ImportPath][d.Analyzer], vetDiagnostic{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "sedalint:", err)
		return 1
	}
	return 2
}

// harvestModule collects annotations for the package under analysis plus
// every module-local dependency. The vet config carries only export data
// for dependencies (no sources), so module-local source directories are
// re-derived from the module root — found by walking up from the package
// directory to go.mod — and the module path it declares.
func harvestModule(fset *token.FileSet, cfg vetConfig, files []*ast.File) *lint.Annotations {
	ann := lint.NewAnnotations()
	for _, f := range files {
		ann.HarvestFile(cfg.ImportPath, f)
	}
	modRoot, modPath := findModule(cfg.Dir)
	if modRoot == "" {
		return ann
	}
	for dep := range cfg.PackageFile {
		if dep == cfg.ImportPath || cfg.Standard[dep] {
			continue
		}
		rel, ok := strings.CutPrefix(dep, modPath)
		if !ok {
			continue
		}
		dir := filepath.Join(modRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		hfset := token.NewFileSet() // positions unused for harvested deps
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(hfset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				continue
			}
			ann.HarvestFile(dep, f)
		}
	}
	return ann
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest)
				}
			}
			return "", ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", ""
		}
		d = parent
	}
}
