// The memory experiment: what SEDASNAP v3 buys a larger-than-RAM engine.
// Per builtin corpus it measures the compressed shard sections against the
// uncompressed v2 encoding, then loads the snapshot paged at resident
// budgets of 100%, 50%, and 25% of the index's encoded size — once per
// paging backstore (heap-held encoded payloads vs disk-backed page-ins vs
// an mmap of the snapshot) — and records the resident heap and query
// latency percentiles at each point: the memory/latency trade the `sedad
// -resident-budget` and `-mmap` flags expose.
//
// Queries are derived from each corpus's own vocabulary (mid-frequency
// terms, one- and two-term conjunctions), so every corpus exercises the
// scatter-gather path without hand-picked keywords.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"seda"
	"seda/internal/snapcodec"
)

// memoryQueryRounds repeats the derived query set this many times per
// budget; with ~5 queries per corpus that is enough samples for a stable
// p95 while keeping `sedabench -exp all` fast.
const memoryQueryRounds = 30

func memoryExp(scale float64) *memoryResult {
	multi := shardCount
	if multi <= 1 {
		multi = 4
	}
	res := &memoryResult{Name: "memory", Scale: scale, Shards: multi, Env: currentEnv()}
	tmp, err := os.MkdirTemp("", "seda-memory-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)

	fmt.Printf("%-16s %12s %12s %8s   %s\n", "corpus", "v2 bytes", "v3 bytes", "v3/v2", "per-budget heap / p95")
	for _, c := range []struct {
		name string
		gen  func(float64) *seda.Collection
		cfg  seda.Config
	}{
		{"worldfactbook", seda.WorldFactbook, seda.Config{}},
		{"mondial", seda.Mondial, seda.MondialConfig()},
		{"googlebase", seda.GoogleBase, seda.Config{}},
		{"recipeml", seda.RecipeML, seda.Config{}},
	} {
		cfg := c.cfg
		cfg.Parallelism = parallelism
		cfg.Shards = multi

		source := c.gen(scale)
		eng, err := seda.NewEngine(source, cfg)
		if err != nil {
			fatal(err)
		}
		row := memoryCorpus{Name: c.name, Docs: source.NumDocs()}

		// Section sizes: the v2 (uncompressed shardCodecV1) encoding each
		// shard would have occupied in a version-2 container, against the
		// delta-coded v3 sections the snapshot below actually carries.
		for s := 0; s < eng.NumShards(); s++ {
			var lw, cw snapcodec.Writer
			if err := eng.Index().EncodeShardLegacy(&lw, s); err != nil {
				fatal(err)
			}
			if err := eng.Index().EncodeShard(&cw, s); err != nil {
				fatal(err)
			}
			row.V2Bytes += int64(lw.Len())
			row.V3Bytes += int64(cw.Len())
		}
		if row.V2Bytes == 0 {
			fatal(fmt.Errorf("memory: corpus %s produced an empty index", c.name))
		}
		row.Ratio = float64(row.V3Bytes) / float64(row.V2Bytes)

		snap := filepath.Join(tmp, c.name+".snap")
		if err := seda.SaveEngineFile(snap, eng); err != nil {
			fatal(err)
		}
		fi, err := os.Stat(snap)
		if err != nil {
			fatal(err)
		}
		row.SnapshotBytes = fi.Size()

		queries := memoryQueries(eng)
		if len(queries) == 0 {
			fatal(fmt.Errorf("memory: no queries derivable from %s vocabulary", c.name))
		}
		wantTerms := eng.Index().NumTerms()
		eng = nil // the paged loads below must not sit on top of the build

		fmt.Printf("%-16s %12d %12d %7.1f%%\n", c.name, row.V2Bytes, row.V3Bytes, 100*row.Ratio)
		for _, b := range []struct {
			label string
			div   int64
		}{
			{"100%", 1}, {"50%", 2}, {"25%", 4},
		} {
			budget := row.V3Bytes / b.div
			fmt.Printf("  %4s ", b.label)
			for _, bk := range []struct {
				label string
				mode  seda.BackingMode
			}{
				{"heap", seda.BackingHeap},
				{"disk", seda.BackingDisk},
				{"mmap", seda.BackingMmap},
			} {
				pcfg := cfg
				pcfg.ResidentBudget = budget
				pcfg.Backing = bk.mode

				runtime.GC()
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				paged, err := seda.LoadEngineFile(snap, pcfg)
				if err != nil {
					fatal(err)
				}
				if paged.Index().NumTerms() != wantTerms {
					fatal(fmt.Errorf("memory: %s paged load differs from built engine", c.name))
				}

				lat := make([]time.Duration, 0, memoryQueryRounds*len(queries))
				for round := 0; round < memoryQueryRounds; round++ {
					for _, q := range queries {
						start := time.Now()
						s, err := paged.NewSession(q)
						if err != nil {
							fatal(err)
						}
						if _, err := s.TopK(10); err != nil {
							fatal(err)
						}
						lat = append(lat, time.Since(start))
					}
				}
				sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })

				// Resident heap at this budget and backing: heap growth
				// attributable to the loaded engine once queries have paged
				// its working set in. GC first so the previous combination's
				// engine does not inflate it. Disk backings should sit
				// materially below heap at tight budgets — evicted shards
				// keep no encoded payload on the heap.
				runtime.GC()
				runtime.ReadMemStats(&m1)
				heap := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
				if heap < 0 {
					heap = 0
				}

				st, ok := paged.PagerStats()
				if !ok {
					fatal(fmt.Errorf("memory: %s budgeted load attached no pager", c.name))
				}
				row.Budgets = append(row.Budgets, memoryBudget{
					Label:            b.label,
					Backing:          bk.label,
					BudgetBytes:      budget,
					HeapBytes:        heap,
					P50Ns:            lat[len(lat)/2].Nanoseconds(),
					P95Ns:            lat[len(lat)*95/100].Nanoseconds(),
					Queries:          len(lat),
					PageIns:          st.PageIns,
					Evictions:        st.Evictions,
					ResidentShards:   st.Resident,
					ResidentBytes:    st.ResidentBytes,
					EncodedHeapBytes: st.EncodedHeapBytes,
					DiskReads:        st.DiskReads,
				})
				fmt.Printf(" %s %s/%v", bk.label, memoryHumanBytes(heap),
					lat[len(lat)*95/100].Round(time.Microsecond))
			}
			fmt.Println()
		}
		res.Corpora = append(res.Corpora, row)
	}
	return res
}

// memoryQueries mirrors the corpus-agnostic query derivation the engine
// equivalence tests use: a few mid-frequency vocabulary terms combined
// into one- and two-term queries.
func memoryQueries(eng *seda.Engine) []string {
	var terms []string
	numDocs := eng.Collection().NumDocs()
	for _, term := range eng.Index().Terms() {
		df := eng.Index().DocFreq(term)
		if df >= 2 && df <= numDocs/2+1 && len(term) >= 3 {
			terms = append(terms, term)
			if len(terms) == 3 {
				break
			}
		}
	}
	var qs []string
	for _, term := range terms {
		qs = append(qs, fmt.Sprintf("(*, %s)", term))
	}
	if len(terms) >= 2 {
		qs = append(qs, fmt.Sprintf("(*, %s) AND (*, %s)", terms[0], terms[1]))
	}
	if len(terms) >= 3 {
		qs = append(qs, fmt.Sprintf("(*, %s) AND (*, %s)", terms[1], terms[2]))
	}
	return qs
}

func memoryHumanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// memoryBudget is one resident-budget measurement within a corpus row.
type memoryBudget struct {
	Label       string `json:"label"`        // fraction of the v3 index size
	Backing     string `json:"backing"`      // paging backstore: heap, disk, or mmap
	BudgetBytes int64  `json:"budget_bytes"` // core.Config.ResidentBudget used
	HeapBytes   int64  `json:"heap_bytes"`   // post-GC heap growth of the loaded engine
	P50Ns       int64  `json:"p50_ns"`       // query latency percentiles over Queries samples
	P95Ns       int64  `json:"p95_ns"`
	Queries     int    `json:"queries"`

	// Pager accounting at the end of the query run.
	PageIns          uint64 `json:"pageins"`
	Evictions        uint64 `json:"evictions"`
	ResidentShards   int    `json:"resident_shards"`
	ResidentBytes    int64  `json:"resident_bytes"`
	EncodedHeapBytes int64  `json:"encoded_heap_bytes"` // evicted payloads still on the Go heap
	DiskReads        uint64 `json:"disk_reads"`         // sections re-read from the snapshot file
}

// memoryCorpus is one corpus row of BENCH_memory.json.
type memoryCorpus struct {
	Name          string         `json:"name"`
	Docs          int            `json:"docs"`
	V2Bytes       int64          `json:"v2_bytes"` // uncompressed shard sections (SEDASNAP v2)
	V3Bytes       int64          `json:"v3_bytes"` // delta-coded shard sections (SEDASNAP v3)
	Ratio         float64        `json:"ratio"`    // v3_bytes / v2_bytes
	SnapshotBytes int64          `json:"snapshot_bytes"`
	Budgets       []memoryBudget `json:"budgets"`
}

// memoryResult extends the benchResult shape with per-corpus compression
// and paged-residency numbers.
type memoryResult struct {
	Name    string         `json:"name"`
	Scale   float64        `json:"scale"`
	Shards  int            `json:"shards"` // shard layout measured
	NsPerOp int64          `json:"ns_per_op"`
	Env     benchEnv       `json:"env"`
	Corpora []memoryCorpus `json:"corpora"`
}

func writeMemoryResult(dir string, r *memoryResult) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, "BENCH_memory.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sedabench: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("wrote %s\n\n", path)
}
