// The lifecycle experiment: what tombstone masking and background
// compaction cost at the engine layer. Per builtin corpus it measures
// the latency of a single-document delete and update (each derives a
// new masked generation), the throughput of compacting an engine whose
// tombstone ratio sits at the sedad default threshold (~30% masked),
// and the query p50 on the masked engine against the compacted one —
// the serving-tier's before/after for a threshold-triggered compaction.
//
// Queries reuse the memory experiment's corpus-derived vocabulary, so
// the masked-vs-compacted comparison runs the same scatter-gather
// workload on both generations.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"seda"
)

// lifecycleQueryRounds repeats the derived query set this many times on
// the masked and on the compacted generation; with ~5 queries per
// corpus that is enough samples for a stable p50 while keeping
// `sedabench -exp all` fast.
const lifecycleQueryRounds = 20

func lifecycleExp(scale float64) *lifecycleResult {
	res := &lifecycleResult{Name: "lifecycle", Scale: scale, Env: currentEnv()}
	fmt.Printf("%-16s %8s %12s %12s %14s %12s %12s\n",
		"corpus", "docs", "delete", "update", "compact", "masked p50", "compacted p50")
	for _, c := range []struct {
		name string
		gen  func(float64) *seda.Collection
		cfg  seda.Config
	}{
		{"worldfactbook", seda.WorldFactbook, seda.Config{}},
		{"mondial", seda.Mondial, seda.MondialConfig()},
		{"googlebase", seda.GoogleBase, seda.Config{}},
		{"recipeml", seda.RecipeML, seda.Config{}},
	} {
		cfg := c.cfg
		cfg.Parallelism = parallelism
		cfg.Shards = shardCount

		source := c.gen(scale)
		eng, err := seda.NewEngine(source, cfg)
		if err != nil {
			fatal(err)
		}
		docs := eng.Collection().Docs()
		if len(docs) < 4 {
			fatal(fmt.Errorf("lifecycle: corpus %s too small at scale %g", c.name, scale))
		}
		row := lifecycleCorpus{Name: c.name, Docs: len(docs)}
		queries := memoryQueries(eng)
		if len(queries) == 0 {
			fatal(fmt.Errorf("lifecycle: no queries derivable from %s vocabulary", c.name))
		}

		// Single-document delete: one masked generation off the full engine.
		start := time.Now()
		if _, _, err := eng.DeleteDocuments(docs[0].Name); err != nil {
			fatal(err)
		}
		row.DeleteNs = time.Since(start).Nanoseconds()

		// Single-document update: re-render an existing document and replace
		// it, which pays the delete mask plus the incremental append.
		var b bytes.Buffer
		if err := docs[1].WriteXML(&b); err != nil {
			fatal(err)
		}
		start = time.Now()
		if _, err := eng.UpdateDocumentXML(docs[1].Name, b.Bytes()); err != nil {
			fatal(err)
		}
		row.UpdateNs = time.Since(start).Nanoseconds()

		// Mask ~30% of the corpus — the sedad default compact-threshold —
		// then measure the masked generation, the compaction itself, and the
		// compacted generation.
		dead := len(docs) * 3 / 10
		if dead == 0 {
			dead = 1
		}
		names := make([]string, 0, dead)
		for i := 0; i < dead; i++ {
			names = append(names, docs[i].Name)
		}
		masked, n, err := eng.DeleteDocuments(names...)
		if err != nil {
			fatal(err)
		}
		row.DeadDocs = n
		row.MaskedP50Ns = lifecycleP50(masked, queries)

		start = time.Now()
		compacted, err := masked.Compact()
		if err != nil {
			fatal(err)
		}
		row.CompactNs = time.Since(start).Nanoseconds()
		row.CompactDocsPerSec = float64(compacted.NumLiveDocs()) / (float64(row.CompactNs) / 1e9)
		row.CompactedP50Ns = lifecycleP50(compacted, queries)

		fmt.Printf("%-16s %8d %12v %12v %14s %12v %12v\n", c.name, row.Docs,
			time.Duration(row.DeleteNs).Round(time.Microsecond),
			time.Duration(row.UpdateNs).Round(time.Microsecond),
			fmt.Sprintf("%v (%.0f docs/s)", time.Duration(row.CompactNs).Round(time.Millisecond), row.CompactDocsPerSec),
			time.Duration(row.MaskedP50Ns).Round(time.Microsecond),
			time.Duration(row.CompactedP50Ns).Round(time.Microsecond))
		res.Corpora = append(res.Corpora, row)
	}
	return res
}

// lifecycleP50 runs the derived query set against one engine generation
// and reports the median per-query latency.
func lifecycleP50(eng *seda.Engine, queries []string) int64 {
	lat := make([]time.Duration, 0, lifecycleQueryRounds*len(queries))
	for round := 0; round < lifecycleQueryRounds; round++ {
		for _, q := range queries {
			start := time.Now()
			s, err := eng.NewSession(q)
			if err != nil {
				fatal(err)
			}
			if _, err := s.TopK(10); err != nil {
				fatal(err)
			}
			lat = append(lat, time.Since(start))
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)/2].Nanoseconds()
}

// lifecycleCorpus is one corpus row of BENCH_lifecycle.json.
type lifecycleCorpus struct {
	Name      string `json:"name"`
	Docs      int    `json:"docs"`
	DeadDocs  int    `json:"dead_docs"`  // documents masked before compaction (~30%)
	DeleteNs  int64  `json:"delete_ns"`  // one-document delete (new masked generation)
	UpdateNs  int64  `json:"update_ns"`  // one-document update (mask + incremental append)
	CompactNs int64  `json:"compact_ns"` // physical rewrite of the ~30%-dead engine

	CompactDocsPerSec float64 `json:"compact_docs_per_sec"` // survivors rewritten per second
	MaskedP50Ns       int64   `json:"masked_p50_ns"`        // query p50 with tombstones consulted
	CompactedP50Ns    int64   `json:"compacted_p50_ns"`     // query p50 after the rewrite
}

// lifecycleResult extends the benchResult shape with per-corpus
// delete/update/compaction numbers.
type lifecycleResult struct {
	Name    string            `json:"name"`
	Scale   float64           `json:"scale"`
	NsPerOp int64             `json:"ns_per_op"`
	Env     benchEnv          `json:"env"`
	Corpora []lifecycleCorpus `json:"corpora"`
}

func writeLifecycleResult(dir string, r *lifecycleResult) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, "BENCH_lifecycle.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sedabench: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("wrote %s\n\n", path)
}
