// The serve experiment: end-to-end latency of the sedad serving tier
// under open-loop HTTP load. Unlike the library-level experiments, this
// one measures what a client sees — JSON decoding, session locking, the
// result cache, and the metrics middleware included — and validates the
// /metrics exposition those requests advance.
//
// The load is open-loop (arrivals fire on a fixed schedule regardless of
// completions), so queueing delay shows up in the percentiles instead of
// being hidden by a closed loop that politely waits for each response.
// Latency is measured from each request's *scheduled* arrival time.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seda"
	"seda/internal/obs"
)

const (
	// serveRequests at serveRPS gives a ~4s measured window — long enough
	// for stable percentiles, short enough for `sedabench -exp all`.
	serveRequests = 600
	serveRPS      = 150.0
)

// serveQueries is the request mix: the paper's running example plus two
// narrower queries, so the run exercises cache hits, session-held
// re-reads, and fresh searches.
var serveQueries = []string{
	`(*, "United States") AND (trade_country, *) AND (percentage, *)`,
	`(trade_country, germany) AND (percentage, *)`,
	`(trade_country, mexico) AND (percentage, *)`,
}

// metricsRequired is the acceptance gate on the end-of-run scrape: one
// family per owning layer (topk search, HTTP serving, result cache,
// engine lifecycle). A missing family or an unparseable exposition fails
// the experiment.
var metricsRequired = []string{
	"seda_topk_searches_total",
	"seda_http_requests_total",
	"seda_http_request_duration_seconds",
	"seda_topk_cache_hits_total",
	"seda_engine_phase_seconds",
}

func serveExp(scale float64) *serveResult {
	res := &serveResult{Name: "serve", Scale: scale, TargetRPS: serveRPS, Env: currentEnv()}

	srv := seda.NewServer(seda.ServerOptions{Parallelism: parallelism, Shards: shardCount})
	check(srv.Registry().RegisterBuiltin("wf", "worldfactbook", scale,
		seda.Config{Parallelism: parallelism, Shards: shardCount}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}

	// Warm-up (untimed): create the session pool — the first request pays
	// the lazy engine build — and prime each session's top-k so the
	// measured window sees the steady-state mix of cache hits, session
	// re-reads, and fresh searches, not one giant build outlier.
	var sessions []string
	for i := 0; i < 2*len(serveQueries); i++ {
		sessions = append(sessions, serveSession(client, base, serveQueries[i%len(serveQueries)]))
	}
	for _, sid := range sessions {
		serveGET(client, base+"/sessions/"+sid+"/topk?k=10")
	}

	latencies := make([]time.Duration, serveRequests)
	var failed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < serveRequests; i++ {
		arrival := start.Add(time.Duration(float64(i) / serveRPS * float64(time.Second)))
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, arrival time.Time) {
			defer wg.Done()
			sid := sessions[i%len(sessions)]
			var resp *http.Response
			var err error
			if i%50 == 0 {
				// A sliver of explain traffic keeps the traced path honest
				// under load.
				body := strings.NewReader(`{"k":10,"explain":true}`)
				resp, err = client.Post(base+"/sessions/"+sid+"/query", "application/json", body)
			} else {
				k := 5 + (i%3)*5
				resp, err = client.Get(base + "/sessions/" + sid + "/topk?k=" + strconv.Itoa(k))
			}
			if err != nil {
				failed.Add(1)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				failed.Add(1)
				return
			}
			latencies[i] = time.Since(arrival)
		}(i, arrival)
	}
	wg.Wait()
	window := time.Since(start)

	res.Requests = serveRequests
	res.Errors = int(failed.Load())
	res.AchievedRPS = float64(serveRequests) / window.Seconds()
	ok := latencies[:0:0]
	for _, l := range latencies {
		if l > 0 {
			ok = append(ok, l)
		}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	if n := len(ok); n > 0 {
		res.P50Ns = ok[n/2].Nanoseconds()
		res.P95Ns = ok[n*95/100].Nanoseconds()
		res.P99Ns = ok[n*99/100].Nanoseconds()
		res.MaxNs = ok[n-1].Nanoseconds()
	}

	// End-of-run scrape: the exposition must parse against the text-format
	// grammar, carry every required family, and show the search counter
	// advanced by the load above.
	mresp, err := client.Get(base + "/metrics")
	check(err)
	fams, err := obs.ParseText(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		fatal(fmt.Errorf("/metrics exposition invalid: %w", err))
	}
	byName := make(map[string]obs.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, name := range metricsRequired {
		if _, present := byName[name]; !present {
			fatal(fmt.Errorf("/metrics is missing required family %q", name))
		}
	}
	for _, s := range byName["seda_topk_searches_total"].Samples {
		res.Searches = uint64(s.Value)
	}
	if res.Searches == 0 {
		fatal(fmt.Errorf("seda_topk_searches_total did not advance under load"))
	}
	res.MetricFamilies = len(fams)

	fmt.Printf("%-28s %12s\n", "open-loop serve", "value")
	fmt.Printf("%-28s %12d\n", "requests", res.Requests)
	fmt.Printf("%-28s %12d\n", "errors", res.Errors)
	fmt.Printf("%-28s %12.1f\n", "target req/s", res.TargetRPS)
	fmt.Printf("%-28s %12.1f\n", "achieved req/s", res.AchievedRPS)
	fmt.Printf("%-28s %12v\n", "p50", time.Duration(res.P50Ns).Round(time.Microsecond))
	fmt.Printf("%-28s %12v\n", "p95", time.Duration(res.P95Ns).Round(time.Microsecond))
	fmt.Printf("%-28s %12v\n", "p99", time.Duration(res.P99Ns).Round(time.Microsecond))
	fmt.Printf("%-28s %12v\n", "max", time.Duration(res.MaxNs).Round(time.Microsecond))
	fmt.Printf("%-28s %12d\n", "searches (from /metrics)", res.Searches)
	fmt.Printf("%-28s %12d\n", "metric families", res.MetricFamilies)
	if res.Errors > 0 {
		fatal(fmt.Errorf("%d of %d requests failed", res.Errors, res.Requests))
	}
	return res
}

func serveSession(client *http.Client, base, query string) string {
	body := strings.NewReader(fmt.Sprintf(`{"collection":"wf","query":%q}`, query))
	resp, err := client.Post(base+"/sessions", "application/json", body)
	check(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		fatal(fmt.Errorf("create session: status %d: %s", resp.StatusCode, raw))
	}
	var out struct {
		Session string `json:"session"`
	}
	check(json.NewDecoder(resp.Body).Decode(&out))
	return out.Session
}

func serveGET(client *http.Client, url string) {
	resp, err := client.Get(url)
	check(err)
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: status %d", url, resp.StatusCode))
	}
}

// serveResult is BENCH_serve.json: open-loop latency percentiles plus the
// end-of-run metrics-scrape evidence.
type serveResult struct {
	Name    string   `json:"name"`
	Scale   float64  `json:"scale"`
	NsPerOp int64    `json:"ns_per_op"` // whole-experiment wall time
	Env     benchEnv `json:"env"`

	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	TargetRPS   float64 `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	P50Ns       int64   `json:"p50_ns"`
	P95Ns       int64   `json:"p95_ns"`
	P99Ns       int64   `json:"p99_ns"`
	MaxNs       int64   `json:"max_ns"`

	// Searches is seda_topk_searches_total at the end of the run;
	// MetricFamilies counts families in the validated exposition.
	Searches       uint64 `json:"searches"`
	MetricFamilies int    `json:"metric_families"`
}

func writeServeResult(dir string, r *serveResult) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, "BENCH_serve.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sedabench: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("wrote %s\n\n", path)
}
