// Command sedabench regenerates every table and figure of the paper's
// evaluation at full scale and prints paper-vs-measured comparisons. It is
// the one-shot companion to the root bench_test.go micro-benchmarks; its
// output is the source for EXPERIMENTS.md.
//
// Each experiment additionally writes a machine-readable result file
// BENCH_<name>.json (wall ns/op, allocations) into -out (default the
// current directory, i.e. the repo root when run as `go run
// ./cmd/sedabench`), giving successive revisions a perf trajectory to
// compare against.
//
// Usage:
//
//	sedabench                  # all experiments at full scale
//	sedabench -exp table1      # one experiment
//	sedabench -scale 0.2       # scaled corpora (faster, shapes preserved)
//	sedabench -out ""          # skip the BENCH_*.json files
//	sedabench -parallelism 1   # sequential builds/searches (perf baseline)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"seda"
	"seda/internal/dataguide"
	"seda/internal/fulltext"
	"seda/internal/index"
	"seda/internal/keys"
	"seda/internal/summary"
	"seda/internal/topk"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|figure3|controlflow|intext|sweep|ablations|coldstart|ingest|shards|memory|lifecycle|serve|all")
	scale := flag.Float64("scale", 1.0, "corpus scale (1.0 = paper size)")
	out := flag.String("out", ".", "directory for BENCH_<name>.json result files (empty disables)")
	par := flag.Int("parallelism", 0, "worker goroutines for engine builds and searches (0 = all cores, 1 = sequential)")
	shardsFlag := flag.Int("shards", 0, "horizontal index shards per engine (0 = single shard); the shards experiment compares 1 against max(this, 4)")
	flag.Parse()
	if *par < 0 {
		fmt.Fprintln(os.Stderr, "sedabench: -parallelism must be >= 0")
		os.Exit(2)
	}
	if *shardsFlag < 0 {
		fmt.Fprintln(os.Stderr, "sedabench: -shards must be >= 0")
		os.Exit(2)
	}
	parallelism = *par
	shardCount = *shardsFlag

	run := func(name string, fn func(float64)) {
		if *exp == "all" || *exp == name {
			fmt.Printf("==== %s ====\n", name)
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			start := time.Now()
			fn(*scale)
			elapsed := time.Since(start)
			runtime.ReadMemStats(&m1)
			fmt.Printf("(%s in %v)\n\n", name, elapsed.Round(time.Millisecond))
			if *out != "" {
				writeBenchResult(*out, benchResult{
					Name:       name,
					Scale:      *scale,
					NsPerOp:    elapsed.Nanoseconds(),
					Allocs:     m1.Mallocs - m0.Mallocs,
					AllocBytes: m1.TotalAlloc - m0.TotalAlloc,
					Env:        currentEnv(),
				})
			}
		}
	}
	run("table1", table1)
	run("intext", inText)
	run("sweep", sweep)
	run("figure3", figure3)
	run("controlflow", controlFlow)
	run("ablations", ablations)
	// coldstart writes a richer per-corpus BENCH file (build vs load), so
	// it manages its own result file instead of going through run().
	if *exp == "all" || *exp == "coldstart" {
		fmt.Println("==== coldstart ====")
		start := time.Now()
		res := coldstart(*scale)
		res.NsPerOp = time.Since(start).Nanoseconds()
		fmt.Printf("(coldstart in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *out != "" {
			writeColdstartResult(*out, res)
		}
	}

	// ingest writes a richer per-corpus BENCH file (incremental add vs full
	// rebuild), so it manages its own result file too.
	if *exp == "all" || *exp == "ingest" {
		fmt.Println("==== ingest ====")
		start := time.Now()
		res := ingest(*scale)
		res.NsPerOp = time.Since(start).Nanoseconds()
		fmt.Printf("(ingest in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *out != "" {
			writeIngestResult(*out, res)
		}
	}

	// shards writes a richer per-corpus BENCH file (1-shard vs multi-shard
	// build and snapshot load), so it manages its own result file too.
	if *exp == "all" || *exp == "shards" {
		fmt.Println("==== shards ====")
		start := time.Now()
		res := shardsExp(*scale)
		res.NsPerOp = time.Since(start).Nanoseconds()
		fmt.Printf("(shards in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *out != "" {
			writeShardsResult(*out, res)
		}
	}

	// memory measures the v3 shard compression and the paged-residency
	// memory/latency trade per corpus, so it manages its own result file.
	if *exp == "all" || *exp == "memory" {
		fmt.Println("==== memory ====")
		start := time.Now()
		res := memoryExp(*scale)
		res.NsPerOp = time.Since(start).Nanoseconds()
		fmt.Printf("(memory in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *out != "" {
			writeMemoryResult(*out, res)
		}
	}

	// lifecycle measures delete/update latency, compaction throughput, and
	// masked-vs-compacted query p50 per corpus; it manages its own file.
	if *exp == "all" || *exp == "lifecycle" {
		fmt.Println("==== lifecycle ====")
		start := time.Now()
		res := lifecycleExp(*scale)
		res.NsPerOp = time.Since(start).Nanoseconds()
		fmt.Printf("(lifecycle in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *out != "" {
			writeLifecycleResult(*out, res)
		}
	}

	// serve measures the HTTP tier under open-loop load and validates the
	// /metrics exposition; it writes percentile fields of its own.
	if *exp == "all" || *exp == "serve" {
		fmt.Println("==== serve ====")
		start := time.Now()
		res := serveExp(*scale)
		res.NsPerOp = time.Since(start).Nanoseconds()
		fmt.Printf("(serve in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *out != "" {
			writeServeResult(*out, res)
		}
	}

	if *exp != "all" {
		switch *exp {
		case "table1", "intext", "sweep", "figure3", "controlflow", "ablations", "coldstart", "ingest", "shards", "memory", "lifecycle", "serve":
		default:
			fmt.Fprintf(os.Stderr, "sedabench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}
}

// table1 reproduces Table 1: dataguide statistics at threshold 40%.
func table1(scale float64) {
	type row struct {
		name   string
		gen    func(float64) *seda.Collection
		docs   int
		guides int
	}
	rows := []row{
		{name: "Google Base snapshot", gen: seda.GoogleBase, docs: 10000, guides: 88},
		{name: "Mondial", gen: seda.Mondial, docs: 5563, guides: 86},
		{name: "RecipeML", gen: seda.RecipeML, docs: 10988, guides: 3},
		{name: "World Factbook 2007", gen: seda.WorldFactbook, docs: 1600, guides: 500},
	}
	fmt.Printf("%-22s %12s %12s %14s %14s\n", "Data set", "# docs", "paper docs", "# data guides", "paper guides")
	for _, r := range rows {
		col := r.gen(scale)
		dg, err := dataguide.BuildParallel(col, nil, 0.40, parallelism)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-22s %12d %12d %14d %14d\n", r.name, col.NumDocs(), r.docs, len(dg.Guides), r.guides)
	}
}

// inText reproduces the §1/§2 corpus statistics on World Factbook.
func inText(scale float64) {
	col := seda.WorldFactbook(scale)
	ix := index.BuildParallel(col, parallelism)
	dict := col.Dict()
	fmt.Printf("%-52s %10s %10s\n", "Statistic", "measured", "paper")
	fmt.Printf("%-52s %10d %10d\n", "documents", col.NumDocs(), 1600)
	fmt.Printf("%-52s %10d %10d\n", "distinct root-to-leaf paths", col.Stats().NumPaths, 1984)
	us := ix.PathsForExpr(fulltext.MustParseQuery(`"United States"`))
	fmt.Printf("%-52s %10d %10d\n", `paths matching (*, "United States")`, len(us), 27)
	fmt.Printf("%-52s %10d %10d\n", "docs containing /country",
		col.PathDocFreq(dict.LookupPath("/country")), 1577)
	refP := dict.LookupPath("/country/transnational_issues/refugees/country_of_origin")
	fmt.Printf("%-52s %10d %10d\n", "docs containing .../refugees/country_of_origin",
		col.PathDocFreq(refP), 186)
}

// sweep reproduces the §6.1 threshold observations: 1600 unmerged guides
// and the reduction factors 3x–100x.
func sweep(scale float64) {
	fmt.Printf("%-22s", "threshold")
	ths := []float64{0, 0.2, 0.4, 0.6, 0.8}
	for _, th := range ths {
		fmt.Printf(" %8.1f", th)
	}
	fmt.Println()
	for _, c := range []struct {
		name string
		gen  func(float64) *seda.Collection
	}{
		{"World Factbook", seda.WorldFactbook},
		{"Mondial", seda.Mondial},
		{"Google Base", seda.GoogleBase},
		{"RecipeML", seda.RecipeML},
	} {
		col := c.gen(scale)
		fmt.Printf("%-22s", c.name)
		for _, th := range ths {
			dg, err := dataguide.BuildParallel(col, nil, th, parallelism)
			if err != nil {
				fatal(err)
			}
			fmt.Printf(" %8d", len(dg.Guides))
		}
		fmt.Printf("   (%d docs)\n", col.NumDocs())
	}
	fmt.Println("paper: unmerged WFB = 1600 guides; reduction 3x (WFB) to 100x (Google Base) at 0.4")
}

// parallelism is the -parallelism flag: the worker-pool width for engine
// builds and top-k searches (0 = all cores).
var parallelism int

// shardCount is the -shards flag: horizontal index shards per engine
// (0 = single shard).
var shardCount int

// wfbEngineWithCatalog builds the full-scale engine + Figure 3(b) catalog.
func wfbEngineWithCatalog(scale float64) *seda.Engine {
	col := seda.WorldFactbook(scale)
	eng, err := seda.NewEngine(col, seda.Config{Parallelism: parallelism, Shards: shardCount})
	if err != nil {
		fatal(err)
	}
	baseKey := keys.MustParse("(/country/name, /country/year)")
	cat := eng.Catalog()
	check(cat.AddDimension("country", seda.ContextEntry{Context: "/country/name", Key: baseKey}))
	check(cat.AddDimension("year", seda.ContextEntry{Context: "/country/year", Key: baseKey}))
	check(cat.AddDimension("import-country", seda.ContextEntry{
		Context: "/country/economy/import_partners/item/trade_country",
		Key:     keys.MustParse("(/country/name, /country/year, .)")}))
	check(cat.AddFact("import-trade-percentage", seda.ContextEntry{
		Context: "/country/economy/import_partners/item/percentage",
		Key:     keys.MustParse("(/country/name, /country/year, ../trade_country)")}))
	check(cat.AddFact("GDP",
		seda.ContextEntry{Context: "/country/economy/GDP", Key: baseKey},
		seda.ContextEntry{Context: "/country/economy/GDP_ppp", Key: baseKey}))
	return eng
}

const query1 = `(*, "United States") AND (trade_country, *) AND (percentage, *)`

// figure3 reproduces Figure 3: the Query 1 star schema.
func figure3(scale float64) {
	eng := wfbEngineWithCatalog(scale)
	s := refinedQuery1Session(eng)
	star, err := s.BuildCube(seda.CubeOptions{})
	if err != nil {
		fatal(err)
	}
	ft := star.FactTable("import-trade-percentage")
	fmt.Printf("fact table %s: %d rows, columns %v\n", ft.Name, ft.NumRows(), ft.Cols)
	sorted, err := ft.Sort("year", "trade_country")
	if err != nil {
		fatal(err)
	}
	limit := 10
	if sorted.NumRows() < limit {
		limit = sorted.NumRows()
	}
	sample := *sorted
	sample.Rows = sorted.Rows[:limit]
	fmt.Println(sample.String())
	for _, dt := range star.DimTables {
		fmt.Printf("dimension %-16s %5d members\n", dt.Name, dt.NumRows())
	}
	fmt.Println("\ngenerated SQL/XML (first 3 statements):")
	for i, stmt := range star.SQL {
		if i >= 3 {
			break
		}
		fmt.Println("  " + stmt)
	}
}

func refinedQuery1Session(eng *seda.Engine) *seda.Session {
	s, err := eng.NewSession(query1)
	if err != nil {
		fatal(err)
	}
	// The full Figure 6 loop: initial top-k and context summary precede
	// the user's context selections.
	if _, err := s.TopK(10); err != nil {
		fatal(err)
	}
	s.ContextSummary()
	check(s.RefineContexts(0, "/country/name"))
	check(s.RefineContexts(1, "/country/economy/import_partners/item/trade_country"))
	check(s.RefineContexts(2, "/country/economy/import_partners/item/percentage"))
	if _, err := s.TopK(20); err != nil {
		fatal(err)
	}
	conns, err := s.ConnectionSummary()
	if err != nil {
		fatal(err)
	}
	dict := eng.Collection().Dict()
	var pick []int
	for i, cn := range conns {
		if cn.Kind != summary.Tree {
			continue
		}
		jp := dict.Path(cn.JoinPath)
		if (cn.TermA == 1 && cn.TermB == 2 && jp == "/country/economy/import_partners/item") ||
			(cn.TermA == 0 && cn.TermB == 1 && jp == "/country") {
			pick = append(pick, i)
		}
	}
	check(s.ChooseConnections(pick...))
	return s
}

// controlFlow reproduces the Figure 6 phase-latency profile on Query 1.
func controlFlow(scale float64) {
	eng := wfbEngineWithCatalog(scale)
	s := refinedQuery1Session(eng)
	if _, err := s.BuildCube(seda.CubeOptions{}); err != nil {
		fatal(err)
	}
	fmt.Printf("engine build: index=%v graph=%v dataguide=%v\n",
		eng.BuildTimings["index"].Round(time.Millisecond),
		eng.BuildTimings["graph"].Round(time.Millisecond),
		eng.BuildTimings["dataguide"].Round(time.Millisecond))
	for _, phase := range []string{"topk", "contexts", "connections", "complete", "cube"} {
		fmt.Printf("%-12s %v\n", phase, s.Timings[phase].Round(time.Microsecond))
	}
}

// ablations prints the A1-A4 design-choice comparisons.
func ablations(scale float64) {
	eng := wfbEngineWithCatalog(scale)

	// A1: ranking.
	q, err := seda.ParseQuery(`(trade_country, *) AND (percentage, *)`)
	if err != nil {
		fatal(err)
	}
	searcher := topk.New(eng.Index(), eng.Graph())
	for _, contentOnly := range []bool{false, true} {
		start := time.Now()
		rs, err := searcher.Search(q, topk.Options{K: 10, ContentOnly: contentOnly, Parallelism: parallelism})
		if err != nil {
			fatal(err)
		}
		sib := 0
		for _, r := range rs {
			a, b := r.Nodes[0], r.Nodes[1]
			if a.Doc == b.Doc && len(a.Dewey) == len(b.Dewey) &&
				a.Dewey.Prefix(len(a.Dewey)-1).String() == b.Dewey.Prefix(len(b.Dewey)-1).String() {
				sib++
			}
		}
		mode := "content x compactness"
		if contentOnly {
			mode = "content only        "
		}
		fmt.Printf("A1 ranking  %s  sibling-paired in top-10: %2d/%2d   (%v)\n",
			mode, sib, len(rs), time.Since(start).Round(time.Microsecond))
	}

	// A3: connection cache.
	s := refinedQuery1Session(eng)
	rs, err := s.TopK(10)
	if err != nil {
		fatal(err)
	}
	for _, noCache := range []bool{false, true} {
		sz := summary.NewSummarizer(eng.Dataguides(), eng.Graph())
		sz.NoCache = noCache
		start := time.Now()
		for i := 0; i < 50; i++ {
			sz.Connections(rs)
		}
		mode := "cache on "
		if noCache {
			mode = "cache off"
		}
		hits, misses := sz.CacheStats()
		fmt.Printf("A3 conn-summary x50  %s  %v  (hits=%d misses=%d)\n",
			mode, time.Since(start).Round(time.Microsecond), hits, misses)
	}

	fmt.Println("A2 join and A4 probe ablations: go test -bench 'BenchmarkAblationJoin|BenchmarkAblationContextProbe'")
}

// coldstart compares the two cold-start strategies per builtin corpus:
// parse the XML and rebuild every derived layer (what a process restart
// cost before engine snapshots) versus load one snapshot from disk. Both
// paths start from bytes — rendered XML documents, or the snapshot file —
// and end with a serving-ready engine.
func coldstart(scale float64) *coldstartResult {
	res := &coldstartResult{Name: "coldstart", Scale: scale, Env: currentEnv()}
	tmp, err := os.MkdirTemp("", "seda-coldstart-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)

	fmt.Printf("%-16s %14s %14s %10s %14s\n", "corpus", "build-from-XML", "load-snapshot", "speedup", "snapshot bytes")
	for _, c := range []struct {
		name string
		gen  func(float64) *seda.Collection
		cfg  seda.Config
	}{
		{"worldfactbook", seda.WorldFactbook, seda.Config{}},
		{"mondial", seda.Mondial, seda.MondialConfig()},
		{"googlebase", seda.GoogleBase, seda.Config{}},
		{"recipeml", seda.RecipeML, seda.Config{}},
	} {
		cfg := c.cfg
		cfg.Parallelism = parallelism
		cfg.Shards = shardCount

		// Setup (untimed): render the corpus to XML bytes and write the
		// snapshot the load path will read.
		source := c.gen(scale)
		type rawDoc struct {
			name string
			xml  []byte
		}
		raw := make([]rawDoc, 0, source.NumDocs())
		for _, doc := range source.Docs() {
			var b bytes.Buffer
			if err := doc.WriteXML(&b); err != nil {
				fatal(err)
			}
			raw = append(raw, rawDoc{name: doc.Name, xml: b.Bytes()})
		}
		eng, err := seda.NewEngine(source, cfg)
		if err != nil {
			fatal(err)
		}
		snap := filepath.Join(tmp, c.name+".snap")
		if err := seda.SaveEngineFile(snap, eng); err != nil {
			fatal(err)
		}
		fi, err := os.Stat(snap)
		if err != nil {
			fatal(err)
		}

		// Path 1: cold start from XML — parse plus full engine build.
		start := time.Now()
		col := seda.NewCollection()
		for _, d := range raw {
			if _, err := col.AddXML(d.name, d.xml); err != nil {
				fatal(err)
			}
		}
		built, err := seda.NewEngine(col, cfg)
		if err != nil {
			fatal(err)
		}
		buildNs := time.Since(start).Nanoseconds()

		// Path 2: cold start from the snapshot.
		start = time.Now()
		loaded, err := seda.LoadEngineAuto(snap, cfg)
		if err != nil {
			fatal(err)
		}
		loadNs := time.Since(start).Nanoseconds()
		if !loaded.FromSnapshot {
			fatal(fmt.Errorf("coldstart: %s did not load from snapshot", c.name))
		}
		if loaded.Engine.Index().NumTerms() != built.Index().NumTerms() {
			fatal(fmt.Errorf("coldstart: %s loaded engine differs from built engine", c.name))
		}

		speedup := float64(buildNs) / float64(loadNs)
		fmt.Printf("%-16s %14v %14v %9.1fx %14d\n", c.name,
			time.Duration(buildNs).Round(time.Microsecond),
			time.Duration(loadNs).Round(time.Microsecond),
			speedup, fi.Size())
		res.Corpora = append(res.Corpora, coldstartCorpus{
			Name: c.name, BuildNs: buildNs, LoadNs: loadNs,
			Speedup: speedup, SnapshotBytes: fi.Size(),
		})
	}
	return res
}

// ingest compares appending a single document to a live engine
// (core.Engine.AddDocuments, the incremental path the serving tier's
// POST /collections/{name}/documents takes) against rebuilding the whole
// engine from an in-memory collection — what an append cost before
// incremental ingest. Both paths start from the same parsed base corpus;
// the incremental side additionally pays the XML parse of the new
// document, which is the serving tier's real workload.
func ingest(scale float64) *ingestResult {
	res := &ingestResult{Name: "ingest", Scale: scale, Env: currentEnv()}
	fmt.Printf("%-16s %8s %14s %14s %10s\n", "corpus", "docs", "add-one-doc", "full-rebuild", "speedup")
	for _, c := range []struct {
		name string
		gen  func(float64) *seda.Collection
		cfg  seda.Config
	}{
		{"worldfactbook", seda.WorldFactbook, seda.Config{}},
		{"mondial", seda.Mondial, seda.MondialConfig()},
		{"googlebase", seda.GoogleBase, seda.Config{}},
		{"recipeml", seda.RecipeML, seda.Config{}},
	} {
		cfg := c.cfg
		cfg.Parallelism = parallelism
		cfg.Shards = shardCount

		// Setup (untimed): render the corpus to XML and build the base
		// engine over all but the last document, plus the full collection
		// the rebuild path starts from.
		source := c.gen(scale)
		docs := source.Docs()
		if len(docs) < 2 {
			fatal(fmt.Errorf("ingest: corpus %s too small at scale %g", c.name, scale))
		}
		raw := make([][]byte, 0, len(docs))
		names := make([]string, 0, len(docs))
		for _, doc := range docs {
			var b bytes.Buffer
			if err := doc.WriteXML(&b); err != nil {
				fatal(err)
			}
			raw = append(raw, b.Bytes())
			names = append(names, doc.Name)
		}
		parse := func(n int) *seda.Collection {
			col := seda.NewCollection()
			for i := 0; i < n; i++ {
				if _, err := col.AddXML(names[i], raw[i]); err != nil {
					fatal(err)
				}
			}
			return col
		}
		base, err := seda.NewEngine(parse(len(raw)-1), cfg)
		if err != nil {
			fatal(err)
		}
		fullCol := parse(len(raw))

		// Path 1: incremental — parse and append the one new document.
		start := time.Now()
		extended, err := base.AddDocumentsXML([]seda.IngestDoc{{Name: names[len(raw)-1], XML: raw[len(raw)-1]}})
		if err != nil {
			fatal(err)
		}
		ingestNs := time.Since(start).Nanoseconds()

		// Path 2: full rebuild over the extended corpus.
		start = time.Now()
		rebuilt, err := seda.NewEngine(fullCol, cfg)
		if err != nil {
			fatal(err)
		}
		rebuildNs := time.Since(start).Nanoseconds()

		if extended.Index().NumTerms() != rebuilt.Index().NumTerms() ||
			extended.Collection().NumNodes() != rebuilt.Collection().NumNodes() {
			fatal(fmt.Errorf("ingest: %s incremental engine differs from rebuilt engine", c.name))
		}

		speedup := float64(rebuildNs) / float64(ingestNs)
		fmt.Printf("%-16s %8d %14v %14v %9.1fx\n", c.name, len(raw),
			time.Duration(ingestNs).Round(time.Microsecond),
			time.Duration(rebuildNs).Round(time.Microsecond), speedup)
		res.Corpora = append(res.Corpora, ingestCorpus{
			Name: c.name, Docs: len(raw), IngestNs: ingestNs,
			RebuildNs: rebuildNs, Speedup: speedup,
		})
	}
	return res
}

// shardsExp compares the 1-shard and multi-shard execution planes per
// builtin corpus: full engine build and snapshot load wall-clock at each
// layout. Sharding parallelizes the index scan, the top-k scatter, and
// snapshot encode/decode, so the multi-shard columns improve with
// GOMAXPROCS; on a single-core box they track the 1-shard columns (the
// layout costs nothing, it just cannot pay out without cores). The
// 1-shard numbers are the same workload the coldstart experiment records,
// so they double as a baseline cross-check.
func shardsExp(scale float64) *shardsResult {
	multi := shardCount
	if multi <= 1 {
		multi = 4
	}
	res := &shardsResult{Name: "shards", Scale: scale, Shards: multi, Env: currentEnv()}
	tmp, err := os.MkdirTemp("", "seda-shards-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)

	fmt.Printf("%-16s %14s %14s %14s %14s\n", "corpus", "build 1-shard", fmt.Sprintf("build %d-shard", multi), "load 1-shard", fmt.Sprintf("load %d-shard", multi))
	for _, c := range []struct {
		name string
		gen  func(float64) *seda.Collection
		cfg  seda.Config
	}{
		{"worldfactbook", seda.WorldFactbook, seda.Config{}},
		{"mondial", seda.Mondial, seda.MondialConfig()},
		{"googlebase", seda.GoogleBase, seda.Config{}},
		{"recipeml", seda.RecipeML, seda.Config{}},
	} {
		col := c.gen(scale)
		row := shardsCorpus{Name: c.name, Docs: col.NumDocs()}

		measure := func(shards int) (buildNs, loadNs int64) {
			cfg := c.cfg
			cfg.Parallelism = parallelism
			cfg.Shards = shards

			start := time.Now()
			eng, err := seda.NewEngine(col, cfg)
			if err != nil {
				fatal(err)
			}
			buildNs = time.Since(start).Nanoseconds()

			snap := filepath.Join(tmp, fmt.Sprintf("%s-%d.snap", c.name, shards))
			if err := seda.SaveEngineFile(snap, eng); err != nil {
				fatal(err)
			}
			start = time.Now()
			loaded, err := seda.LoadEngineFile(snap, cfg)
			if err != nil {
				fatal(err)
			}
			loadNs = time.Since(start).Nanoseconds()
			if loaded.NumShards() != eng.NumShards() {
				fatal(fmt.Errorf("shards: %s loaded with %d shards, saved %d", c.name, loaded.NumShards(), eng.NumShards()))
			}
			if loaded.Index().NumTerms() != eng.Index().NumTerms() {
				fatal(fmt.Errorf("shards: %s loaded engine differs from built engine", c.name))
			}
			return buildNs, loadNs
		}

		row.Build1Ns, row.Load1Ns = measure(1)
		row.BuildNNs, row.LoadNNs = measure(multi)
		row.BuildSpeedup = float64(row.Build1Ns) / float64(row.BuildNNs)
		row.LoadSpeedup = float64(row.Load1Ns) / float64(row.LoadNNs)
		fmt.Printf("%-16s %14v %14v %14v %14v\n", c.name,
			time.Duration(row.Build1Ns).Round(time.Microsecond),
			time.Duration(row.BuildNNs).Round(time.Microsecond),
			time.Duration(row.Load1Ns).Round(time.Microsecond),
			time.Duration(row.LoadNNs).Round(time.Microsecond))
		res.Corpora = append(res.Corpora, row)
	}
	return res
}

// shardsCorpus is one corpus row of BENCH_shards.json.
type shardsCorpus struct {
	Name         string  `json:"name"`
	Docs         int     `json:"docs"`
	Build1Ns     int64   `json:"build_1shard_ns"`
	BuildNNs     int64   `json:"build_nshard_ns"`
	Load1Ns      int64   `json:"load_1shard_ns"`
	LoadNNs      int64   `json:"load_nshard_ns"`
	BuildSpeedup float64 `json:"build_speedup"` // build_1shard_ns / build_nshard_ns
	LoadSpeedup  float64 `json:"load_speedup"`  // load_1shard_ns / load_nshard_ns
}

// shardsResult extends the benchResult shape with per-corpus
// 1-shard-vs-multi-shard numbers.
type shardsResult struct {
	Name    string         `json:"name"`
	Scale   float64        `json:"scale"`
	Shards  int            `json:"shards"` // the multi-shard layout measured
	NsPerOp int64          `json:"ns_per_op"`
	Env     benchEnv       `json:"env"`
	Corpora []shardsCorpus `json:"corpora"`
}

func writeShardsResult(dir string, r *shardsResult) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, "BENCH_shards.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sedabench: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("wrote %s\n\n", path)
}

// benchEnv records the execution environment in every BENCH_*.json so a
// perf trajectory is only ever compared across like machines: wall-clock
// from a 1-core container says nothing about an 8-core box.
type benchEnv struct {
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	GoVersion   string `json:"go_version"`
	Parallelism int    `json:"parallelism"` // the -parallelism flag (0 = all cores)
	ShardsFlag  int    `json:"shards_flag"` // the -shards flag (0 = single shard)
}

func currentEnv() benchEnv {
	return benchEnv{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GoVersion:   runtime.Version(),
		Parallelism: parallelism,
		ShardsFlag:  shardCount,
	}
}

// ingestCorpus is one corpus row of BENCH_ingest.json.
type ingestCorpus struct {
	Name      string  `json:"name"`
	Docs      int     `json:"docs"`
	IngestNs  int64   `json:"ingest_ns"`  // parse + incremental add of one document
	RebuildNs int64   `json:"rebuild_ns"` // full engine rebuild over the same corpus
	Speedup   float64 `json:"speedup"`    // rebuild_ns / ingest_ns
}

// ingestResult extends the benchResult shape with per-corpus
// incremental-vs-rebuild numbers.
type ingestResult struct {
	Name    string         `json:"name"`
	Scale   float64        `json:"scale"`
	NsPerOp int64          `json:"ns_per_op"` // whole-experiment wall time
	Env     benchEnv       `json:"env"`
	Corpora []ingestCorpus `json:"corpora"`
}

func writeIngestResult(dir string, r *ingestResult) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, "BENCH_ingest.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sedabench: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("wrote %s\n\n", path)
}

// coldstartCorpus is one corpus row of BENCH_coldstart.json.
type coldstartCorpus struct {
	Name          string  `json:"name"`
	BuildNs       int64   `json:"build_ns"` // XML parse + full engine build
	LoadNs        int64   `json:"load_ns"`  // snapshot load
	Speedup       float64 `json:"speedup"`  // build_ns / load_ns
	SnapshotBytes int64   `json:"snapshot_bytes"`
}

// coldstartResult extends the benchResult shape with per-corpus
// build-vs-load numbers.
type coldstartResult struct {
	Name    string            `json:"name"`
	Scale   float64           `json:"scale"`
	NsPerOp int64             `json:"ns_per_op"` // whole-experiment wall time
	Env     benchEnv          `json:"env"`
	Corpora []coldstartCorpus `json:"corpora"`
}

func writeColdstartResult(dir string, r *coldstartResult) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, "BENCH_coldstart.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sedabench: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("wrote %s\n\n", path)
}

// benchResult is the machine-readable record one experiment run leaves
// behind for perf-trajectory comparisons across revisions. Each experiment
// runs once, so ns_per_op is its wall time.
type benchResult struct {
	Name       string   `json:"name"`
	Scale      float64  `json:"scale"`
	NsPerOp    int64    `json:"ns_per_op"`
	Allocs     uint64   `json:"allocs"`
	AllocBytes uint64   `json:"alloc_bytes"`
	Env        benchEnv `json:"env"`
}

func writeBenchResult(dir string, r benchResult) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, "BENCH_"+r.Name+".json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sedabench: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("wrote %s\n\n", path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sedabench: %v\n", err)
	os.Exit(1)
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}
