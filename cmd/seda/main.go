// Command seda is the command-line counterpart of the paper's GUI (Figures
// 5 and 7): an interactive REPL over one collection that walks the Figure 6
// control flow — query, top-k results, context and connection summaries,
// refinement, complete results, and cube construction.
//
// Usage:
//
//	seda -gen worldfactbook -scale 0.1          # explore a generated corpus
//	seda -data ./corpus                          # explore a directory of XML
//	echo 'query (*, "United States")' | seda -gen worldfactbook -scale 0.05
//
// REPL commands:
//
//	query <seda query>     start a session, run top-k, show results
//	topk [k]               re-run top-k
//	contexts               show the context summary panel
//	refine <term> <path>   restrict a term to one context path
//	connections            show the connection summary panel
//	choose <i> [j ...]     pick connections by number
//	complete               materialize the complete result set R(q)
//	deffact <name> <col> <key>   define a fact from a result column
//	defdim  <name> <col> <key>   define a dimension from a result column
//	cube [fact...]         build the star schema (optionally adding facts)
//	analyze <measure> <dim> [agg]  aggregate the cube (default SUM)
//	stats                  collection and dataguide statistics
//	\save <file>           write the engine as a snapshot (all indexes included)
//	\load <file>           replace the engine from a snapshot (or a v1
//	                       collection.gob, which rebuilds the indexes)
//	help, quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"seda"
	"seda/internal/rel"
)

func main() {
	gen := flag.String("gen", "", "generate corpus: worldfactbook|mondial|googlebase|recipeml")
	scale := flag.Float64("scale", 0.1, "generator scale")
	data := flag.String("data", "", "directory of .xml files to load")
	k := flag.Int("k", 10, "default top-k")
	shards := flag.Int("shards", 0, "horizontal index shards (0 = single shard; answers are identical at any setting)")
	flag.Parse()

	var col *seda.Collection
	cfg := seda.Config{}
	switch {
	case *data != "":
		var err error
		col, err = seda.LoadXMLDir(*data)
		if err != nil {
			fail(err)
		}
	case *gen == "worldfactbook":
		col = seda.WorldFactbook(*scale)
	case *gen == "mondial":
		col = seda.Mondial(*scale)
		cfg = seda.MondialConfig()
	case *gen == "googlebase":
		col = seda.GoogleBase(*scale)
	case *gen == "recipeml":
		col = seda.RecipeML(*scale)
	default:
		fmt.Fprintln(os.Stderr, "seda: give -data DIR or -gen DATASET (see -h)")
		os.Exit(2)
	}

	if *shards < 0 {
		fail(fmt.Errorf("-shards must be >= 0"))
	}
	cfg.Shards = *shards
	eng, err := seda.NewEngine(col, cfg)
	if err != nil {
		fail(err)
	}
	st := col.Stats()
	fmt.Printf("loaded %d documents, %d nodes, %d distinct paths; %d dataguides, %d link edges\n",
		st.NumDocs, st.NumNodes, st.NumPaths, len(eng.Dataguides().Guides), eng.Graph().NumEdges())
	fmt.Println(`type "help" for commands`)

	repl := &repl{eng: eng, cfg: cfg, k: *k, out: os.Stdout}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("seda> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			break
		}
		if line != "" {
			if err := repl.dispatch(line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		}
		fmt.Print("seda> ")
	}
	fmt.Println()
}

type repl struct {
	eng     *seda.Engine
	cfg     seda.Config // fallback config for \load of v1 collection streams
	session *seda.Session
	conns   []seda.Connection
	k       int
	out     io.Writer
}

func (r *repl) dispatch(line string) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "help":
		fmt.Fprintln(r.out, "commands: query topk contexts refine connections choose dot complete deffact defdim cube analyze guides stats \\save \\load quit")
		return nil
	case "\\save":
		if rest == "" {
			return fmt.Errorf(`usage: \save <file>`)
		}
		if err := seda.SaveEngineFile(rest, r.eng); err != nil {
			return err
		}
		fi, err := os.Stat(rest)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "saved engine snapshot to %s (%d bytes)\n", rest, fi.Size())
		return nil
	case "\\load":
		if rest == "" {
			return fmt.Errorf(`usage: \load <file>`)
		}
		le, err := seda.LoadEngineAuto(rest, r.cfg)
		if err != nil {
			return err
		}
		r.eng = le.Engine
		r.session = nil
		r.conns = nil
		how := "loaded from snapshot"
		if !le.FromSnapshot {
			how = "rebuilt from v1 collection stream"
		}
		st := r.eng.Collection().Stats()
		fmt.Fprintf(r.out, "%s: %d documents, %d nodes, %d distinct paths (%s)\n",
			rest, st.NumDocs, st.NumNodes, st.NumPaths, how)
		return nil
	case "query":
		s, err := r.eng.NewSession(rest)
		if err != nil {
			return err
		}
		r.session = s
		r.conns = nil
		return r.topk(r.k)
	case "topk":
		k := r.k
		if rest != "" {
			var err error
			if k, err = strconv.Atoi(rest); err != nil {
				return err
			}
		}
		return r.topk(k)
	case "contexts":
		return r.contexts()
	case "refine":
		parts := strings.Fields(rest)
		if len(parts) < 2 {
			return fmt.Errorf("usage: refine <term#> <path> [path...]")
		}
		term, err := strconv.Atoi(parts[0])
		if err != nil {
			return err
		}
		if err := r.need(); err != nil {
			return err
		}
		if err := r.session.RefineContexts(term, parts[1:]...); err != nil {
			return err
		}
		fmt.Fprintf(r.out, "term %d restricted; query is now %s\n", term, r.session.Query())
		return r.topk(r.k)
	case "connections":
		return r.connections()
	case "choose":
		if err := r.need(); err != nil {
			return err
		}
		var idx []int
		for _, f := range strings.Fields(rest) {
			i, err := strconv.Atoi(f)
			if err != nil {
				return err
			}
			idx = append(idx, i)
		}
		if err := r.session.ChooseConnections(idx...); err != nil {
			return err
		}
		fmt.Fprintf(r.out, "chose %d connection(s)\n", len(idx))
		return nil
	case "complete":
		if err := r.need(); err != nil {
			return err
		}
		tab, err := r.session.ResultTable()
		if err != nil {
			return err
		}
		if tab.NumRows() > 12 {
			head := *tab
			head.Rows = tab.Rows[:12]
			head.Name = fmt.Sprintf("R(q) first 12 of %d", tab.NumRows())
			tab = &head
		}
		fmt.Fprint(r.out, tab.String())
		return nil
	case "dot":
		if err := r.need(); err != nil {
			return err
		}
		dot, err := r.session.ConnectionsDOT()
		if err != nil {
			return err
		}
		fmt.Fprint(r.out, dot)
		return nil
	case "deffact", "defdim":
		parts := strings.Fields(rest)
		if len(parts) < 3 {
			return fmt.Errorf("usage: %s <name> <column#> <key-spec>", cmd)
		}
		colIdx, err := strconv.Atoi(parts[1])
		if err != nil {
			return err
		}
		if err := r.need(); err != nil {
			return err
		}
		_, err = r.session.BuildCube(seda.CubeOptions{Define: []seda.NewDef{{
			Name: parts[0], Column: colIdx, IsFact: cmd == "deffact",
			Key: strings.Join(parts[2:], " "),
		}}})
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "defined %s %q\n", map[bool]string{true: "fact", false: "dimension"}[cmd == "deffact"], parts[0])
		return nil
	case "cube":
		if err := r.need(); err != nil {
			return err
		}
		star, err := r.session.BuildCube(seda.CubeOptions{AddFacts: strings.Fields(rest)})
		if err != nil {
			return err
		}
		r.printStar(star)
		return nil
	case "analyze":
		parts := strings.Fields(rest)
		if len(parts) < 2 {
			return fmt.Errorf("usage: analyze <measure> <dim> [SUM|COUNT|AVG|MIN|MAX]")
		}
		if err := r.need(); err != nil {
			return err
		}
		star, err := r.session.BuildCube(seda.CubeOptions{})
		if err != nil {
			return err
		}
		fn := rel.Sum
		if len(parts) > 2 {
			fn = rel.AggFn(strings.ToUpper(parts[2]))
		}
		tab, err := r.eng.Aggregate(star, parts[0], []string{parts[1]}, fn)
		if err != nil {
			return err
		}
		fmt.Fprint(r.out, tab.String())
		return nil
	case "guides":
		dg := r.eng.Dataguides()
		if rest == "" {
			out := dg.Summary()
			if len(dg.Guides) > 20 {
				lines := strings.SplitN(out, "\n", 22)
				out = strings.Join(lines[:21], "\n") + fmt.Sprintf("\n  ... %d more (guides <id> to inspect)\n", len(dg.Guides)-20)
			}
			fmt.Fprint(r.out, out)
			return nil
		}
		id, err := strconv.Atoi(rest)
		if err != nil {
			return err
		}
		if id < 0 || id >= len(dg.Guides) {
			return fmt.Errorf("guide %d out of range (0..%d)", id, len(dg.Guides)-1)
		}
		fmt.Fprint(r.out, dg.Guides[id].TreeString(r.eng.Collection().Dict()))
		return nil
	case "stats":
		st := r.eng.Collection().Stats()
		dg := r.eng.Dataguides()
		fmt.Fprintf(r.out, "documents: %d  nodes: %d  distinct paths: %d  tags: %d\n", st.NumDocs, st.NumNodes, st.NumPaths, st.NumTags)
		fmt.Fprintf(r.out, "dataguides: %d (threshold %.2f, reduction %.1fx)  link edges: %d\n",
			len(dg.Guides), dg.Threshold, dg.Stats().Reduction, r.eng.Graph().NumEdges())
		return nil
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (r *repl) need() error {
	if r.session == nil {
		return fmt.Errorf("no active session; start with: query (context, search) ...")
	}
	return nil
}

func (r *repl) topk(k int) error {
	if err := r.need(); err != nil {
		return err
	}
	rs, err := r.session.TopK(k)
	if err != nil {
		return err
	}
	dict := r.eng.Collection().Dict()
	fmt.Fprintf(r.out, "top-%d results for %s\n", k, r.session.Query())
	for i, res := range rs {
		fmt.Fprintf(r.out, "%2d. score=%.3f compact=%.2f\n", i+1, res.Score, res.Compactness)
		for j, n := range res.Nodes {
			content := r.eng.Collection().Content(n)
			if len(content) > 48 {
				content = content[:48] + "…"
			}
			fmt.Fprintf(r.out, "      t%d %-58s %q\n", j, dict.Path(res.Paths[j]), content)
		}
	}
	if len(rs) == 0 {
		fmt.Fprintln(r.out, "(no results)")
	}
	return nil
}

func (r *repl) contexts() error {
	if err := r.need(); err != nil {
		return err
	}
	buckets := r.session.ContextSummary()
	for ti, b := range buckets {
		fmt.Fprintf(r.out, "term %d %s — %d context(s):\n", ti, b.Term, len(b.Entries))
		for i, e := range b.Entries {
			if i == 8 {
				fmt.Fprintf(r.out, "    ... %d more\n", len(b.Entries)-8)
				break
			}
			entity := ""
			if e.Entity != "" {
				entity = "  <" + e.Entity + ">"
			}
			fmt.Fprintf(r.out, "    %-62s in %d docs (%d nodes)%s\n", e.PathString, e.DocFreq, e.Occurrences, entity)
		}
	}
	return nil
}

func (r *repl) connections() error {
	if err := r.need(); err != nil {
		return err
	}
	conns, err := r.session.ConnectionSummary()
	if err != nil {
		return err
	}
	r.conns = conns
	dict := r.eng.Collection().Dict()
	fmt.Fprintf(r.out, "%d candidate connection(s):\n", len(conns))
	for i, cn := range conns {
		fp := ""
		if cn.FalsePositive {
			fp = "  [no instance in top-k]"
		}
		fmt.Fprintf(r.out, "%2d. t%d~t%d  %s  (len %d, support %d)%s\n",
			i, cn.TermA, cn.TermB, cn.Describe(dict), cn.Length, cn.Support, fp)
	}
	return nil
}

func (r *repl) printStar(star *seda.Star) {
	for _, w := range star.Warnings {
		fmt.Fprintln(r.out, "note:", w)
	}
	for _, ft := range star.FactTables {
		fmt.Fprint(r.out, ft.String())
	}
	for _, dt := range star.DimTables {
		fmt.Fprintf(r.out, "dimension %s: %d members\n", dt.Name, dt.NumRows())
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "seda: %v\n", err)
	os.Exit(1)
}
