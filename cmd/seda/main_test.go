package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"seda"
)

func newTestRepl(t *testing.T) (*repl, *bytes.Buffer) {
	t.Helper()
	col := seda.WorldFactbook(0.02)
	eng, err := seda.NewEngine(col, seda.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	return &repl{eng: eng, k: 5, out: &buf}, &buf
}

func TestReplFullSession(t *testing.T) {
	r, out := newTestRepl(t)
	steps := []struct {
		cmd     string
		wantErr bool
		wantOut string
	}{
		{cmd: "help", wantOut: "commands:"},
		{cmd: "contexts", wantErr: true}, // no session yet
		{cmd: `query (*, "United States") AND (trade_country, *)`, wantOut: "top-5 results"},
		{cmd: "contexts", wantOut: "/country/name"},
		{cmd: "refine 1 /country/economy/import_partners/item/trade_country", wantOut: "restricted"},
		{cmd: "connections", wantOut: "candidate connection"},
		{cmd: "choose 0", wantOut: "chose 1"},
		{cmd: "dot", wantOut: "digraph"},
		{cmd: "complete", wantOut: "nodeid1"},
		{cmd: "stats", wantOut: "documents:"},
		{cmd: "topk 3", wantOut: "top-3"},
		{cmd: "bogus", wantErr: true},
		{cmd: "refine x y", wantErr: true},
		{cmd: "choose notanumber", wantErr: true},
		{cmd: "analyze", wantErr: true},
		{cmd: "deffact onlytwo args", wantErr: true},
	}
	for _, st := range steps {
		out.Reset()
		err := r.dispatch(st.cmd)
		if st.wantErr {
			if err == nil {
				t.Errorf("dispatch(%q): want error, output %q", st.cmd, out.String())
			}
			continue
		}
		if err != nil {
			t.Fatalf("dispatch(%q): %v", st.cmd, err)
		}
		if st.wantOut != "" && !strings.Contains(out.String(), st.wantOut) {
			t.Errorf("dispatch(%q) output missing %q:\n%s", st.cmd, st.wantOut, out.String())
		}
	}
}

// TestReplSaveLoad snapshots the engine, reloads it, and verifies the
// reloaded engine answers the same query identically; the session is
// reset on load.
func TestReplSaveLoad(t *testing.T) {
	r, out := newTestRepl(t)
	path := filepath.Join(t.TempDir(), "wf.snap")

	if err := r.dispatch(`query (*, "United States")`); err != nil {
		t.Fatal(err)
	}
	before := out.String()

	out.Reset()
	if err := r.dispatch(`\save ` + path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "saved engine snapshot") {
		t.Errorf("save output: %q", out.String())
	}

	out.Reset()
	if err := r.dispatch(`\load ` + path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "loaded from snapshot") {
		t.Errorf("load output: %q", out.String())
	}
	if r.session != nil {
		t.Error("session not reset by \\load")
	}
	if err := r.dispatch("topk 3"); err == nil {
		t.Error("topk after \\load should require a fresh session")
	}

	out.Reset()
	if err := r.dispatch(`query (*, "United States")`); err != nil {
		t.Fatal(err)
	}
	if out.String() != before {
		t.Errorf("loaded engine answers differently:\nbefore:\n%s\nafter:\n%s", before, out.String())
	}

	// Usage errors.
	if err := r.dispatch(`\save`); err == nil {
		t.Error("\\save without a path should fail")
	}
	if err := r.dispatch(`\load /nonexistent/nope.snap`); err == nil {
		t.Error("\\load of a missing file should fail")
	}
}

func TestReplDefineAndAnalyze(t *testing.T) {
	r, out := newTestRepl(t)
	cmds := []string{
		`query (/country/economy/import_partners/item/percentage, *)`,
		`deffact pct 0 (/country/name, /country/year, ../trade_country)`,
		`cube`,
		`analyze pct year SUM`,
	}
	for _, c := range cmds {
		out.Reset()
		if err := r.dispatch(c); err != nil {
			t.Fatalf("dispatch(%q): %v", c, err)
		}
	}
	if !strings.Contains(out.String(), "SUM(pct)") {
		t.Errorf("analyze output:\n%s", out.String())
	}
}

func TestReplNoSessionGuards(t *testing.T) {
	r, _ := newTestRepl(t)
	for _, c := range []string{"topk", "connections", "complete", "cube", "dot", "analyze pct year"} {
		if err := r.dispatch(c); err == nil {
			t.Errorf("dispatch(%q) without session: want error", c)
		}
	}
}
