// Command sedagen generates the paper's evaluation corpora as XML files on
// disk, so they can be inspected, loaded with seda.LoadXMLDir, or fed to
// other tools.
//
// Usage:
//
//	sedagen -dataset worldfactbook -scale 0.1 -out ./corpus
//	sedagen -dataset all -scale 1 -out ./corpora
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"seda"
)

var generators = map[string]func(float64) *seda.Collection{
	"worldfactbook": seda.WorldFactbook,
	"mondial":       seda.Mondial,
	"googlebase":    seda.GoogleBase,
	"recipeml":      seda.RecipeML,
}

func main() {
	dataset := flag.String("dataset", "worldfactbook", "corpus to generate: worldfactbook|mondial|googlebase|recipeml|all")
	scale := flag.Float64("scale", 0.1, "corpus scale (1.0 = paper size)")
	out := flag.String("out", "corpus", "output directory")
	snapshot := flag.Bool("snapshot", false, "also write binary snapshots: engine.snap (full engine, loadable with seda.LoadEngineFile — no rebuild on load) and the v1 collection.gob (collection only, loadable with seda.LoadCollection)")
	shards := flag.Int("shards", 0, "horizontal index shards of the engine.snap engine (0 = single shard; the snapshot stores one section group per shard)")
	flag.Parse()
	if *shards < 0 {
		fmt.Fprintln(os.Stderr, "sedagen: -shards must be >= 0")
		os.Exit(2)
	}

	names := []string{*dataset}
	if *dataset == "all" {
		names = []string{"worldfactbook", "mondial", "googlebase", "recipeml"}
	}
	for _, name := range names {
		gen, ok := generators[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "sedagen: unknown dataset %q\n", name)
			os.Exit(2)
		}
		dir := *out
		if *dataset == "all" {
			dir = filepath.Join(*out, name)
		}
		if err := write(name, gen(*scale), dir, *snapshot, *shards); err != nil {
			fmt.Fprintf(os.Stderr, "sedagen: %v\n", err)
			os.Exit(1)
		}
	}
}

func write(name string, col *seda.Collection, dir string, snapshot bool, shards int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, doc := range col.Docs() {
		path := filepath.Join(dir, fmt.Sprintf("%s.xml", doc.Name))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := doc.WriteXML(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if snapshot {
		f, err := os.Create(filepath.Join(dir, "collection.gob"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := col.Save(f); err != nil {
			return err
		}
		// The engine snapshot persists every derived layer (indexes, data
		// graph, dataguide summary), so loading it skips the rebuild the
		// v1 collection.gob still pays.
		cfg := seda.Config{}
		if name == "mondial" {
			cfg = seda.MondialConfig()
		}
		cfg.Shards = shards
		eng, err := seda.NewEngine(col, cfg)
		if err != nil {
			return err
		}
		if err := seda.SaveEngineFile(filepath.Join(dir, "engine.snap"), eng); err != nil {
			return err
		}
	}
	st := col.Stats()
	fmt.Printf("%s: wrote %d documents (%d nodes, %d distinct paths) to %s\n",
		name, st.NumDocs, st.NumNodes, st.NumPaths, dir)
	return nil
}
