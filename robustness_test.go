package seda

// Failure-injection and robustness tests over the public API: malformed
// inputs must fail with errors (never panic), degenerate corpora must stay
// usable, and Unicode content must survive the whole pipeline.

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestQueryParserNeverPanics fuzzes the query parser with random
// printable garbage. Outcomes must be a query or an error — never a panic.
func TestQueryParserNeverPanics(t *testing.T) {
	alphabet := `()",*|/ ANDORnotabc123∧`
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for i := 0; i < r.Intn(60); i++ {
			sb.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		_, _ = ParseQuery(sb.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestKeyParserNeverPanics fuzzes the relative-key parser.
func TestKeyParserNeverPanics(t *testing.T) {
	alphabet := `()/.,a bc_`
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for i := 0; i < r.Intn(40); i++ {
			sb.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		_, _ = ParseKey(sb.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSingleDocumentCollection(t *testing.T) {
	col := NewCollection()
	if _, err := col.AddXML("only", []byte(`<r><a>hello world</a></r>`)); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(col, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewSession(`(a, hello)`)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Errorf("results = %d", len(rs))
	}
	if len(eng.Dataguides().Guides) != 1 {
		t.Errorf("guides = %d", len(eng.Dataguides().Guides))
	}
}

func TestUnicodeContentEndToEnd(t *testing.T) {
	col := NewCollection()
	docs := []string{
		`<país><nombre>España</nombre><capital>Madrid</capital></país>`,
		`<país><nombre>Perú</nombre><capital>Lima</capital></país>`,
		`<国><名前>日本</名前><首都>東京</首都></国>`,
	}
	for i, d := range docs {
		if _, err := col.AddXML(strings.Repeat("u", i+1), []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := NewEngine(col, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewSession(`(nombre, españa)`)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("unicode search results = %d", len(rs))
	}
	if got := col.Content(rs[0].Nodes[0]); got != "España" {
		t.Errorf("content = %q", got)
	}
	// CJK tags intern and render.
	if p := col.Dict().LookupPath("/国/首都"); p == 0 {
		t.Error("CJK path not interned")
	}
}

func TestDanglingReferencesStayUsable(t *testing.T) {
	col := NewCollection()
	if _, err := col.AddXML("a", []byte(`<a id="x" ref="missing"><v>1</v></a>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := col.AddXML("b", []byte(`<b ref="also-missing"><v>2</v></b>`)); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(col, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Graph().NumEdges() != 0 {
		t.Errorf("dangling refs created %d edges", eng.Graph().NumEdges())
	}
	s, err := eng.NewSession(`(v, *)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TopK(5); err != nil {
		t.Fatal(err)
	}
}

func TestDeepNestingSurvives(t *testing.T) {
	var sb strings.Builder
	const depth = 200
	for i := 0; i < depth; i++ {
		sb.WriteString("<n>")
	}
	sb.WriteString("deep")
	for i := 0; i < depth; i++ {
		sb.WriteString("</n>")
	}
	col := NewCollection()
	if _, err := col.AddXML("deep", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(col, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewSession(`(*, deep)`)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.TopK(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Nodes[0].Dewey.Level() != depth {
		t.Errorf("deep match: %v", rs)
	}
}

func TestValueLinkDiscoveryPublicAPI(t *testing.T) {
	col := NewCollection()
	for _, d := range []string{
		`<country><name>China</name></country>`,
		`<country><name>Canada</name></country>`,
		`<country><name>Mexico</name></country>`,
		`<trade><partner>China</partner></trade>`,
		`<trade><partner>Canada</partner></trade>`,
		`<trade><partner>Mexico</partner></trade>`,
	} {
		if _, err := col.AddXML(d[:9], []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := NewEngine(col, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cands := eng.Graph().DiscoverValueLinks(ValueLinkOptions{AddEdges: true})
	if len(cands) == 0 {
		t.Fatal("no value links discovered through public API")
	}
	// With edges in place, cross-doc search connects trade to country.
	s, err := eng.NewSession(`(partner, china) AND (name, china)`)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.TopK(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Error("no results over discovered value links")
	}
}

func TestEntityRegistryPublicAPI(t *testing.T) {
	eng := wfbEngine(t, 0.02)
	eng.Entities().Register("/country/name", "country")
	eng.Entities().RegisterPrefix("/country/economy/import_partners", "import partner")
	s, err := eng.NewSession(`(*, "United States")`)
	if err != nil {
		t.Fatal(err)
	}
	labeled := 0
	for _, e := range s.ContextSummary()[0].Entries {
		if e.Entity != "" {
			labeled++
		}
	}
	if labeled < 2 {
		t.Errorf("labeled contexts = %d, want >= 2", labeled)
	}
}

func TestEmptyAndPathologicalSearches(t *testing.T) {
	eng := wfbEngine(t, 0.02)
	// Very large K.
	s, err := eng.NewSession(`(percentage, *)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TopK(1_000_000); err != nil {
		t.Fatal(err)
	}
	// Zero K falls back to the default.
	if _, err := s.TopK(0); err != nil {
		t.Fatal(err)
	}
	// A term matching nothing plus a term matching plenty: no tuples.
	s2, err := eng.NewSession(`(percentage, *) AND (*, qqqqzzzz)`)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s2.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("results = %d", len(rs))
	}
}
